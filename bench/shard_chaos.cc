// Shard chaos harness: the multi-process extension of chaos_soak. A
// supervisor trains once, saves the snapshot, forks real worker
// processes (this binary re-exec'd with --worker), and drives a
// ShardRouter over them from open-loop Poisson clients (zipf-skewed
// input selection, so some shards run hot) while a chaos thread kills
// workers mid-load. Two modes:
//
//   * legacy (--replicas 0, the default): one worker per shard. Rounds
//     cycle `net.*` fault windows (refused connects, dropped frames,
//     injected stragglers) and SIGKILL + same-port restarts; the gate is
//     the PR-6 degradation contract.
//   * replicated (--replicas N): KAMEL_SHARD_GROUPS groups of (1 primary
//     + N warm standbys) with WAL shipping (semi-sync, min_sync 1).
//     Every round SIGKILLs a group's CURRENT primary during load,
//     requires the router to promote a caught-up standby (bumped epoch),
//     restarts the victim as a standby of the new primary, and requires
//     it to catch back up. Submit clients run throughout; every acked
//     submit must survive into the final primary's WAL (zero acked
//     loss), and reads must never fall back to router-local linear
//     imputation while a caught-up standby exists.
//
// Gates (exit 1):
//   * contract: a well-formed imputation NEVER errors; Submit may only
//     refuse with kUnavailable / kDeadlineExceeded / kFailedPrecondition
//     inside a failover window;
//   * recovery: every killed worker returns (SERVING in legacy mode;
//     promoted-then-caught-up in replicated mode) within budget;
//   * identity: with the fleet healthy — before and after the chaos —
//     routed output is byte-identical to single-process Impute;
//   * durability (replicated): the set of acked submit ids is a subset
//     of the kSubmit records in the final primaries' WALs;
//   * promotion (replicated): every kill round ends in a promotion, and
//     linear_fallback_gaps stays 0;
//   * latency: imputation p99 <= $KAMEL_SHARD_P99_S (default 20s) and
//     p999 <= $KAMEL_SHARD_P999_S (default 60s) — generous bounds that
//     catch wedges, not noise; p50/p99/p999 are always reported.
//
// Exit 0 pass, 1 gate violation, 2 watchdog stall, 3 harness error.
// $KAMEL_SOAK_IMPUTATIONS scales the chaos-phase load (default 2000);
// $KAMEL_SOAK_RATE is the Poisson arrival rate per second (default 40);
// $KAMEL_SHARD_GROUPS sets the group count (default 4);
// $KAMEL_SHARD_REPLICAS mirrors --replicas for CI wiring;
// $KAMEL_SHARD_PORT_BASE moves the fixed worker ports (default 38731).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "io/wal.h"
#include "replication/replication.h"
#include "shard/router.h"
#include "shard/worker.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::bench {
namespace {

constexpr const char* kSnapshotPath = "/tmp/kamel_shard_chaos_snapshot.bin";

long EnvLong(const char* name, long fallback) {
  if (const char* env = std::getenv(name)) {
    const long parsed = std::atol(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

double EnvDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double parsed = std::atof(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

long TargetImputations() { return EnvLong("KAMEL_SOAK_IMPUTATIONS", 2000); }
int NumGroups() {
  return static_cast<int>(std::max(1L, EnvLong("KAMEL_SHARD_GROUPS", 4)));
}

uint16_t PortBase(int num_workers) {
  const long parsed = EnvLong("KAMEL_SHARD_PORT_BASE", 38731);
  if (parsed > 0 && parsed < 65536 - num_workers) {
    return static_cast<uint16_t>(parsed);
  }
  return 38731;
}

bool Progress() { return std::getenv("KAMEL_SOAK_PROGRESS") != nullptr; }

// Must match between the trainer, the router's local snapshot, and every
// worker child (snapshots do not persist options). Same shape as the
// chaos_soak fixture: a real height-1 pyramid so the partition has 4 key
// cells and every leaf has a replicated root ancestor.
KamelOptions ChaosKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 25;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 150;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

// ---------------------------------------------------------------------------
// Worker child:
//   --worker <shard> <num_shards> <port> <snapshot_path> <wal_dir|->
//            <standby_of_port> <min_sync_standbys>
// ---------------------------------------------------------------------------

std::atomic<bool> g_worker_stop{false};
void HandleWorkerStop(int) { g_worker_stop.store(true); }

int RunWorker(int argc, char** argv) {
  if (argc < 9) {
    std::fprintf(stderr, "worker: bad argv\n");
    return 3;
  }
  shard::WorkerOptions options;
  options.shard = std::atoi(argv[2]);
  options.num_shards = std::atoi(argv[3]);
  options.port = static_cast<uint16_t>(std::atoi(argv[4]));
  options.kamel = ChaosKamelOptions();
  options.serving = {.num_threads = 2, .max_pending = 16,
                     .overload_policy = OverloadPolicy::kShed};
  if (std::strcmp(argv[6], "-") != 0) options.wal_dir = argv[6];
  options.standby_of_port = static_cast<uint16_t>(std::atoi(argv[7]));
  options.replication.min_sync_standbys = std::atoi(argv[8]);
  shard::ShardWorker worker(options);
  if (const Status status = worker.Start(argv[5]); !status.ok()) {
    std::fprintf(stderr, "worker %d: start failed: %s\n", options.shard,
                 status.ToString().c_str());
    return 3;
  }
  // SIGTERM = clean drain at the end of the run; chaos kills use SIGKILL,
  // which by design never reaches this handler.
  signal(SIGTERM, HandleWorkerStop);
  signal(SIGINT, HandleWorkerStop);
  while (!g_worker_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  worker.Stop();
  return 0;
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

// Child pids by flat worker index, shared with the watchdog (which must
// reap before _Exit).
std::mutex g_children_mu;
std::vector<pid_t> g_children;

void KillAllChildren(int sig) {
  std::lock_guard<std::mutex> lock(g_children_mu);
  for (pid_t& pid : g_children) {
    if (pid > 0) {
      kill(pid, sig);
      waitpid(pid, nullptr, sig == SIGKILL ? 0 : WNOHANG);
      if (sig == SIGKILL) pid = -1;
    }
  }
}

// Forks this binary back as one worker. Returns -1 on harness failure.
pid_t SpawnWorker(const char* self, int flat, int shard, int num_shards,
                  uint16_t port, const std::string& wal_dir,
                  uint16_t standby_of_port, int min_sync) {
  const std::string shard_s = std::to_string(shard);
  const std::string num_s = std::to_string(num_shards);
  const std::string port_s = std::to_string(port);
  const std::string wal_s = wal_dir.empty() ? "-" : wal_dir;
  const std::string standby_s = std::to_string(standby_of_port);
  const std::string sync_s = std::to_string(min_sync);
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return -1;
  }
  if (pid == 0) {
    const char* argv[] = {self,          "--worker",       shard_s.c_str(),
                          num_s.c_str(), port_s.c_str(),   kSnapshotPath,
                          wal_s.c_str(), standby_s.c_str(), sync_s.c_str(),
                          nullptr};
    execv(self, const_cast<char**>(argv));
    std::perror("execv");
    _exit(3);
  }
  std::lock_guard<std::mutex> lock(g_children_mu);
  g_children[flat] = pid;
  return pid;
}

struct ChaosCounters {
  std::atomic<long> served{0};
  std::atomic<long> completed{0};  // watchdog heartbeat
  std::atomic<long> unexpected{0};
  std::atomic<long> submits_acked{0};
  std::atomic<long> submits_refused{0};  // contract-allowed refusals
  std::atomic<bool> recovery_failed{false};
  std::atomic<int> kills{0};
  std::atomic<int> restarts{0};
  std::atomic<int> promotions{0};
  std::atomic<bool> chaos_done{false};
};

// Imputation latencies from every client thread, merged for the
// percentile report.
struct LatencyLog {
  std::mutex mu;
  std::vector<double> samples;
  void Merge(std::vector<double>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    samples.insert(samples.end(), batch.begin(), batch.end());
  }
};

// Zipf(s=1.1) over the input set: rank 1 is the hotspot, so one shard
// group runs hot while the tail keeps every group warm.
std::vector<double> ZipfCdf(size_t n) {
  std::vector<double> cdf(n);
  double total = 0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), 1.1);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

size_t ZipfDraw(const std::vector<double>& cdf, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double u = unit(rng);
  return std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin();
}

// Open-loop Poisson client: arrivals are scheduled by an exponential
// clock that does NOT wait for the previous call, so a slow fleet eats
// into the schedule instead of silently lowering the offered load (the
// classic closed-loop coordination bug). With synchronous calls the
// backlog bound is the thread itself: a late arrival fires immediately.
void ClientLoop(shard::ShardRouter* router,
                const std::vector<Trajectory>* inputs,
                const std::vector<double>* zipf_cdf, int seed,
                double rate_per_s, long target, ChaosCounters* counters,
                LatencyLog* latencies) {
  std::mt19937_64 rng(0x9e3779b97f4a7c15ull * (seed + 1));
  std::exponential_distribution<double> inter(rate_per_s);
  std::vector<double> local;
  auto next_arrival = std::chrono::steady_clock::now();
  while (counters->served.load(std::memory_order_relaxed) < target ||
         !counters->chaos_done.load(std::memory_order_relaxed)) {
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(inter(rng)));
    std::this_thread::sleep_until(next_arrival);  // no-op when behind
    const size_t pick = ZipfDraw(*zipf_cdf, rng);
    const auto t0 = std::chrono::steady_clock::now();
    Result<ImputedTrajectory> result = router->Impute((*inputs)[pick]);
    const auto t1 = std::chrono::steady_clock::now();
    local.push_back(std::chrono::duration<double>(t1 - t0).count());
    counters->completed.fetch_add(1, std::memory_order_relaxed);
    if (result.ok()) {
      counters->served.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters->unexpected.fetch_add(1);
      std::fprintf(stderr, "contract violation: routed impute failed: %s\n",
                   result.status().ToString().c_str());
    }
  }
  latencies->Merge(std::move(local));
}

// Submit client (replicated mode): durable writes with unique ids under
// the same Poisson discipline. Refusals inside a failover window are
// part of the contract (the primary is dead, or semi-sync cover is gone
// while the victim catches back up); anything else is a violation. Every
// acked id is recorded for the post-run WAL audit.
void SubmitLoop(shard::ShardRouter* router,
                const std::vector<Trajectory>* inputs,
                const std::vector<double>* zipf_cdf, int seed,
                double rate_per_s, ChaosCounters* counters,
                std::mutex* acked_mu, std::set<int64_t>* acked_ids) {
  std::mt19937_64 rng(0xbf58476d1ce4e5b9ull * (seed + 1));
  std::exponential_distribution<double> inter(rate_per_s);
  int64_t seq = 0;
  auto next_arrival = std::chrono::steady_clock::now();
  while (!counters->chaos_done.load(std::memory_order_relaxed)) {
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(inter(rng)));
    std::this_thread::sleep_until(next_arrival);
    Trajectory trajectory = (*inputs)[ZipfDraw(*zipf_cdf, rng)];
    trajectory.id = 1'000'000 + seed * 100'000 + seq++;
    Result<shard::SubmitAck> ack = router->Submit(trajectory);
    counters->completed.fetch_add(1, std::memory_order_relaxed);
    if (ack.ok()) {
      counters->submits_acked.fetch_add(1);
      std::lock_guard<std::mutex> lock(*acked_mu);
      acked_ids->insert(trajectory.id);
    } else if (ack.status().code() == StatusCode::kUnavailable ||
               ack.status().code() == StatusCode::kDeadlineExceeded ||
               ack.status().code() == StatusCode::kFailedPrecondition) {
      counters->submits_refused.fetch_add(1);
    } else {
      counters->unexpected.fetch_add(1);
      std::fprintf(stderr, "contract violation: submit failed: %s\n",
                   ack.status().ToString().c_str());
    }
  }
}

bool WaitForServing(const shard::ShardRouter& router, int flat,
                    double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.ShardHealth()[flat] == HealthState::kServing) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

// Legacy chaos (one worker per shard, no replication): net fault windows
// plus SIGKILL + same-port restart, gated on probing back to SERVING.
void LegacyChaosLoop(const char* self, shard::ShardRouter* router,
                     const std::vector<uint16_t>* ports, int num_groups,
                     long target, ChaosCounters* counters) {
  FaultInjector& injector = FaultInjector::Instance();
  const int rounds =
      std::max(num_groups, static_cast<int>(target / 500));
  for (int round = 0; round < rounds; ++round) {
    // Fault window against healthy workers: stragglers (drives hedging),
    // dropped request frames (drives per-call deadlines + retries), and
    // refused connects (drives the connect retry schedule + failover).
    const char* fault = (round % 3 == 0)   ? "net.recv.delay"
                        : (round % 3 == 1) ? "net.send.drop"
                                           : "net.connect";
    injector.Arm(fault, /*skip=*/0, /*count=*/round % 3 == 0 ? -1 : 8);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    injector.Reset();

    const int victim = round % num_groups;
    pid_t pid;
    {
      std::lock_guard<std::mutex> lock(g_children_mu);
      pid = g_children[victim];
    }
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      {
        std::lock_guard<std::mutex> lock(g_children_mu);
        g_children[victim] = -1;
      }
      counters->kills.fetch_add(1);
      if (Progress()) {
        std::fprintf(stderr, "[chaos] round %d: killed worker %d\n", round,
                     victim);
      }
    }
    // Let clients run against the degraded fleet for a while.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));

    if (SpawnWorker(self, victim, victim, num_groups, (*ports)[victim],
                    "", 0, 0) < 0) {
      counters->recovery_failed.store(true);
      break;
    }
    counters->restarts.fetch_add(1);
    if (!WaitForServing(*router, victim, 60.0)) {
      std::fprintf(stderr,
                   "FAIL: worker %d did not return to SERVING after "
                   "restart (round %d)\n",
                   victim, round);
      counters->recovery_failed.store(true);
      break;
    }
    if (Progress()) {
      std::fprintf(stderr, "[chaos] round %d: worker %d back to SERVING\n",
                   round, victim);
    }
  }
  injector.Reset();
  counters->chaos_done.store(true);
}

// Replicated chaos: every round SIGKILLs the CURRENT primary of one
// group mid-load, requires the router's prober to promote a caught-up
// standby (bumped epoch), restarts the victim as a standby of the new
// primary, and requires it to catch back up — role STANDBY, the new
// epoch adopted, lag within bounds. No net fault windows here: the gate
// is the promotion ladder itself, and it must fire on every round.
void ReplicaChaosLoop(const char* self, shard::ShardRouter* router,
                      const std::vector<uint16_t>* ports,
                      const std::vector<std::string>* wal_dirs,
                      int num_groups, int replicas, long target,
                      ChaosCounters* counters) {
  const int group_size = replicas + 1;
  const int rounds =
      std::max(num_groups, static_cast<int>(target / 500));
  for (int round = 0; round < rounds; ++round) {
    const int group = round % num_groups;

    // Find the group's current primary through the router's own view.
    int victim_member = -1;
    uint64_t old_epoch = 0;
    for (const auto& view : router->ReplicaViews()) {
      if (view.group == group && view.is_primary) {
        victim_member = view.member;
        old_epoch = view.epoch;
      }
    }
    if (victim_member < 0) {
      std::fprintf(stderr, "FAIL: group %d has no believed primary\n",
                   group);
      counters->recovery_failed.store(true);
      break;
    }
    const int victim_flat = group * group_size + victim_member;
    pid_t pid;
    {
      std::lock_guard<std::mutex> lock(g_children_mu);
      pid = g_children[victim_flat];
    }
    if (pid <= 0) {
      counters->recovery_failed.store(true);
      break;
    }
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    {
      std::lock_guard<std::mutex> lock(g_children_mu);
      g_children[victim_flat] = -1;
    }
    counters->kills.fetch_add(1);
    if (Progress()) {
      std::fprintf(stderr,
                   "[chaos] round %d: killed group %d primary (member %d, "
                   "epoch %llu)\n",
                   round, group, victim_member,
                   static_cast<unsigned long long>(old_epoch));
    }

    // The promotion gate: a surviving standby must take over with a
    // bumped epoch within budget, driven purely by the prober.
    int new_member = -1;
    uint64_t new_epoch = 0;
    const auto promote_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < promote_deadline) {
      for (const auto& view : router->ReplicaViews()) {
        if (view.group == group && view.is_primary &&
            view.member != victim_member && view.epoch > old_epoch) {
          new_member = view.member;
          new_epoch = view.epoch;
        }
      }
      if (new_member >= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (new_member < 0) {
      std::fprintf(stderr,
                   "FAIL: group %d never promoted after primary kill "
                   "(round %d)\n",
                   group, round);
      counters->recovery_failed.store(true);
      break;
    }
    counters->promotions.fetch_add(1);
    if (Progress()) {
      std::fprintf(stderr,
                   "[chaos] round %d: group %d promoted member %d at epoch "
                   "%llu\n",
                   round, group, new_member,
                   static_cast<unsigned long long>(new_epoch));
    }

    // Rejoin the deposed worker as a standby of the new primary: its
    // old-epoch pull is answered with reset + the new epoch, divergent
    // history is wiped, and it must catch back up.
    const int new_flat = group * group_size + new_member;
    if (SpawnWorker(self, victim_flat, group, num_groups,
                    (*ports)[victim_flat], (*wal_dirs)[victim_flat],
                    (*ports)[new_flat], std::min(1, replicas)) < 0) {
      counters->recovery_failed.store(true);
      break;
    }
    counters->restarts.fetch_add(1);
    bool caught_up = false;
    const auto rejoin_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (std::chrono::steady_clock::now() < rejoin_deadline) {
      for (const auto& view : router->ReplicaViews()) {
        if (view.group == group && view.member == victim_member) {
          caught_up = view.reachable && !view.stale &&
                      view.role == replication::ReplicaRole::kStandby &&
                      view.epoch == new_epoch;
        }
      }
      if (caught_up) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!caught_up) {
      std::fprintf(stderr,
                   "FAIL: group %d member %d never caught up as a standby "
                   "of epoch %llu (round %d)\n",
                   group, victim_member,
                   static_cast<unsigned long long>(new_epoch), round);
      counters->recovery_failed.store(true);
      break;
    }
    if (Progress()) {
      std::fprintf(stderr,
                   "[chaos] round %d: member %d rejoined group %d as "
                   "standby\n",
                   round, victim_member, group);
    }
    // Let load flow against the post-promotion fleet before the next
    // round picks a victim.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  counters->chaos_done.store(true);
}

// Byte-identity sweep: every input imputed through the router must match
// the single-process result bit for bit (stats.seconds excepted).
bool IdenticalWhenHealthy(const KamelSnapshot& snapshot,
                          shard::ShardRouter* router,
                          const std::vector<Trajectory>& inputs,
                          const char* phase) {
  for (size_t i = 0; i < inputs.size(); ++i) {
    Result<ImputedTrajectory> direct = snapshot.Impute(inputs[i]);
    Result<ImputedTrajectory> routed = router->Impute(inputs[i]);
    if (!direct.ok() || !routed.ok()) {
      std::fprintf(stderr, "FAIL(%s): impute error on input %zu: %s / %s\n",
                   phase, i, direct.status().ToString().c_str(),
                   routed.status().ToString().c_str());
      return false;
    }
    const auto& a = direct->trajectory.points;
    const auto& b = routed->trajectory.points;
    bool same = a.size() == b.size() &&
                direct->stats.bert_calls == routed->stats.bert_calls &&
                direct->stats.full_model_segments ==
                    routed->stats.full_model_segments &&
                direct->stats.failed_segments == routed->stats.failed_segments;
    for (size_t p = 0; same && p < a.size(); ++p) {
      same = a[p].pos.lat == b[p].pos.lat && a[p].pos.lng == b[p].pos.lng &&
             a[p].time == b[p].time;
    }
    if (!same) {
      std::fprintf(stderr,
                   "FAIL(%s): routed result differs from single-process "
                   "on input %zu\n",
                   phase, i);
      return false;
    }
  }
  return true;
}

// Durability audit: every acked submit id must appear as a kSubmit
// record in the WAL of its group's FINAL primary — the member writes
// were being routed to when the run ended. Semi-sync shipping is what
// carries an ack across promotions; this is the gate that proves it.
bool AuditAckedSubmits(const std::vector<std::string>& final_primary_dirs,
                       const std::set<int64_t>& acked_ids) {
  std::set<int64_t> found;
  for (const std::string& dir : final_primary_dirs) {
    WalOptions options;
    options.dir = dir;
    WalRecoveryReport report;
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(options, &report);
    if (!wal.ok()) {
      std::fprintf(stderr, "FAIL: audit open of %s: %s\n", dir.c_str(),
                   wal.status().ToString().c_str());
      return false;
    }
    for (const WalRecord& record : report.records) {
      if (record.type != WalRecordType::kSubmit) continue;
      Result<Trajectory> trajectory =
          DecodeTrajectoryPayload(record.payload);
      if (trajectory.ok()) found.insert(trajectory->id);
    }
  }
  long missing = 0;
  for (const int64_t id : acked_ids) {
    if (found.count(id) == 0) {
      ++missing;
      std::fprintf(stderr,
                   "FAIL: acked submit id %lld missing from every final "
                   "primary WAL\n",
                   static_cast<long long>(id));
    }
  }
  return missing == 0;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1)));
  return sorted[index];
}

int RunSupervisor(const char* self, int replicas) {
  const long target = TargetImputations();
  const int num_groups = NumGroups();
  const int group_size = replicas + 1;
  const int num_workers = num_groups * group_size;
  const uint16_t port_base = PortBase(num_workers);
  const double rate = EnvDouble("KAMEL_SOAK_RATE", 40.0);

  // Train once, persist the snapshot all workers load.
  const SimScenario scenario = BuildScenario(MiniSpec());
  Kamel trained(ChaosKamelOptions());
  if (const Status status = trained.Train(scenario.train); !status.ok()) {
    std::fprintf(stderr, "train failed: %s\n", status.ToString().c_str());
    return 3;
  }
  if (const Status status = trained.SaveToFile(kSnapshotPath);
      !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 3;
  }
  auto snapshot = trained.Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 3;
  }

  std::vector<Trajectory> inputs;
  for (const Trajectory& trajectory : scenario.test.trajectories) {
    inputs.push_back(Sparsify(trajectory, 400.0));
  }
  const std::vector<double> zipf_cdf = ZipfCdf(inputs.size());

  // Fleet on fixed ports (a restarted worker must come back on the port
  // the router knows; SO_REUSEADDR makes the re-bind immediate). Layout
  // is group-major: group g member m at flat index g*group_size + m,
  // member 0 the initial primary. WAL dirs are per-run (stale epochs
  // from a previous run must not leak in).
  const std::string wal_root =
      "/tmp/kamel_shard_chaos_wal_" + std::to_string(::getpid());
  std::error_code ec;
  std::filesystem::remove_all(wal_root, ec);
  std::vector<uint16_t> ports(num_workers);
  std::vector<std::string> wal_dirs(num_workers);
  std::vector<shard::ShardEndpoint> endpoints;
  {
    std::lock_guard<std::mutex> lock(g_children_mu);
    g_children.assign(num_workers, -1);
  }
  for (int flat = 0; flat < num_workers; ++flat) {
    ports[flat] = static_cast<uint16_t>(port_base + flat);
    endpoints.push_back({"127.0.0.1", ports[flat]});
    if (replicas > 0) {
      const int group = flat / group_size;
      const int member = flat % group_size;
      wal_dirs[flat] = wal_root + "/g" + std::to_string(group) + "m" +
                       std::to_string(member);
      std::filesystem::create_directories(wal_dirs[flat], ec);
      if (ec) {
        std::fprintf(stderr, "mkdir %s: %s\n", wal_dirs[flat].c_str(),
                     ec.message().c_str());
        return 3;
      }
    }
  }
  for (int flat = 0; flat < num_workers; ++flat) {
    const int group = flat / group_size;
    const int member = flat % group_size;
    const uint16_t standby_of =
        (replicas > 0 && member > 0) ? ports[group * group_size] : 0;
    if (SpawnWorker(self, flat, group, num_groups, ports[flat],
                    wal_dirs[flat], standby_of,
                    std::min(1, replicas)) < 0) {
      return 3;
    }
  }

  shard::RouterOptions router_options;
  router_options.call_deadline_s = 30.0;  // single-core host under load
  router_options.replicas = replicas;
  router_options.probe_interval_s = replicas > 0 ? 0.1 : 0.25;
  router_options.promote_deadline_s = 30.0;
  shard::ShardRouter router(*snapshot, endpoints, router_options);
  if (const Status status = router.WaitHealthy(120.0); !status.ok()) {
    std::fprintf(stderr, "fleet never reached SERVING: %s\n",
                 status.ToString().c_str());
    KillAllChildren(SIGKILL);
    return 3;
  }
  if (Progress()) std::fprintf(stderr, "[chaos] fleet SERVING\n");

  // Gate 1: healthy fleet, byte-identical output.
  if (!IdenticalWhenHealthy(**snapshot, &router, inputs, "pre-chaos")) {
    KillAllChildren(SIGKILL);
    return 1;
  }

  ChaosCounters counters;
  LatencyLog latencies;
  std::mutex acked_mu;
  std::set<int64_t> acked_ids;

  // Watchdog: chaos rounds are seconds each; two minutes of global
  // silence means the router wedged on a dead shard. _Exit skips
  // destructors on purpose — they may be what is stuck.
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog([&] {
    long last = -1;
    int stalled_polls = 0;
    while (!stop_watchdog.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      const long now = counters.completed.load();
      stalled_polls = (now == last) ? stalled_polls + 1 : 0;
      last = now;
      if (Progress()) {
        std::fprintf(stderr,
                     "[chaos] %ld/%ld served, %d kills, %d promotions, "
                     "%ld acked submits\n",
                     counters.served.load(), target, counters.kills.load(),
                     counters.promotions.load(),
                     counters.submits_acked.load());
      }
      if (stalled_polls >= 240) {
        std::fprintf(stderr,
                     "watchdog: no progress past %ld imputations in 120s\n",
                     now);
        KillAllChildren(SIGKILL);
        std::_Exit(2);
      }
    }
  });

  std::thread chaos;
  if (replicas > 0) {
    chaos = std::thread(ReplicaChaosLoop, self, &router, &ports, &wal_dirs,
                        num_groups, replicas, target, &counters);
  } else {
    chaos = std::thread(LegacyChaosLoop, self, &router, &ports, num_groups,
                        target, &counters);
  }
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(ClientLoop, &router, &inputs, &zipf_cdf, i,
                         rate / kClients, target, &counters, &latencies);
  }
  std::thread submitter;
  if (replicas > 0) {
    submitter = std::thread(SubmitLoop, &router, &inputs, &zipf_cdf, 7,
                            rate / 8, &counters, &acked_mu, &acked_ids);
  }
  for (std::thread& client : clients) client.join();
  chaos.join();
  if (submitter.joinable()) submitter.join();

  // Gate 2 ran inside the chaos loop (recovery after every kill).
  // Gate 3: faults cleared, full fleet — byte-identical again.
  FaultInjector::Instance().Reset();
  bool identical = false;
  if (router.WaitHealthy(60.0).ok()) {
    identical = IdenticalWhenHealthy(**snapshot, &router, inputs,
                                     "post-chaos");
  } else {
    std::fprintf(stderr, "FAIL: fleet not SERVING after chaos cleared\n");
  }

  // Capture each group's final primary before tearing the fleet down —
  // the durability audit reads exactly those WAL directories.
  std::vector<std::string> final_primary_dirs;
  if (replicas > 0) {
    for (const auto& view : router.ReplicaViews()) {
      if (view.is_primary) {
        final_primary_dirs.push_back(
            wal_dirs[view.group * group_size + view.member]);
      }
    }
  }

  stop_watchdog.store(true);
  watchdog.join();
  KillAllChildren(SIGTERM);
  KillAllChildren(SIGKILL);

  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(latencies.mu);
    sorted = latencies.samples;
  }
  std::sort(sorted.begin(), sorted.end());
  const double p50 = Percentile(sorted, 0.50);
  const double p99 = Percentile(sorted, 0.99);
  const double p999 = Percentile(sorted, 0.999);

  const shard::RouterStats stats = router.stats();
  std::printf(
      "shard chaos: %ld served of %ld attempts | %d kills, %d restarts, "
      "%d promotions | %ld submits acked, %ld refused | latency p50 %.0f "
      "ms p99 %.0f ms p999 %.0f ms | router: %lld calls, %lld retries, "
      "%lld hedges (%lld won), %lld failovers, %lld linear-fallback gaps, "
      "%lld stale primaries\n",
      counters.served.load(), counters.completed.load(),
      counters.kills.load(), counters.restarts.load(),
      counters.promotions.load(), counters.submits_acked.load(),
      counters.submits_refused.load(), p50 * 1e3, p99 * 1e3, p999 * 1e3,
      static_cast<long long>(stats.remote_calls),
      static_cast<long long>(stats.retries),
      static_cast<long long>(stats.hedges),
      static_cast<long long>(stats.hedge_wins),
      static_cast<long long>(stats.failovers),
      static_cast<long long>(stats.linear_fallback_gaps),
      static_cast<long long>(stats.stale_primaries));

  bool failed = false;
  if (counters.unexpected.load() > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld calls failed outside the degradation "
                 "contract\n",
                 counters.unexpected.load());
    failed = true;
  }
  if (counters.recovery_failed.load()) failed = true;
  if (!identical) failed = true;
  const double p99_gate = EnvDouble("KAMEL_SHARD_P99_S", 20.0);
  const double p999_gate = EnvDouble("KAMEL_SHARD_P999_S", 60.0);
  if (p99 > p99_gate || p999 > p999_gate) {
    std::fprintf(stderr,
                 "FAIL: latency gate: p99 %.2fs (<= %.2fs) p999 %.2fs "
                 "(<= %.2fs)\n",
                 p99, p99_gate, p999, p999_gate);
    failed = true;
  }
  if (replicas > 0) {
    if (stats.linear_fallback_gaps != 0) {
      std::fprintf(stderr,
                   "FAIL: %lld gaps fell back to linear while a caught-up "
                   "standby existed\n",
                   static_cast<long long>(stats.linear_fallback_gaps));
      failed = true;
    }
    if (counters.promotions.load() < counters.kills.load()) {
      std::fprintf(stderr, "FAIL: %d kills but only %d promotions\n",
                   counters.kills.load(), counters.promotions.load());
      failed = true;
    }
    if (!AuditAckedSubmits(final_primary_dirs, acked_ids)) failed = true;
  }
  if (failed) return 1;
  std::filesystem::remove_all(wal_root, ec);
  std::printf(
      "shard chaos: PASS (%d kill/restart cycles, %d promotions, %zu "
      "acked submits audited)\n",
      counters.kills.load(), counters.promotions.load(), acked_ids.size());
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    return kamel::bench::RunWorker(argc, argv);
  }
  int replicas = static_cast<int>(
      kamel::bench::EnvLong("KAMEL_SHARD_REPLICAS", 0));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      replicas = std::atoi(argv[++i]);
    }
  }
  if (replicas < 0) replicas = 0;
  // Re-exec through the stable self path, not argv[0] (which may be
  // relative to a cwd the children do not share).
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) {
    std::perror("readlink /proc/self/exe");
    return 3;
  }
  self[n] = '\0';
  return kamel::bench::RunSupervisor(self, replicas);
}
