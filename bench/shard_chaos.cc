// Shard chaos harness: the multi-process extension of chaos_soak. A
// supervisor trains once, saves the snapshot, forks 4 real worker
// processes (this binary re-exec'd with --worker), and drives a
// ShardRouter over them from concurrent client threads while a chaos
// thread SIGKILLs a worker, restarts it on the same port, and cycles
// `net.*` faults (refused connects, dropped frames, injected stragglers)
// through the router's side of every connection. Gates:
//
//   * contract: a well-formed imputation NEVER fails — a dead or faulted
//     shard degrades (failover to the surviving shard's replicated
//     ancestors, then router-local straight lines), it does not error
//     (exit 1 otherwise);
//   * recovery: after every kill the restarted worker must probe back to
//     SERVING within its budget (exit 1);
//   * identity: with all shards healthy and no faults armed — before and
//     after the chaos — routed output is byte-identical to single-process
//     KamelSnapshot::Impute on the same snapshot (exit 1);
//   * liveness: a watchdog aborts with exit 2 if global progress stalls
//     (kill + restart must never wedge the router).
//
// Exit 0 pass, 1 contract/recovery/identity violation, 2 watchdog stall,
// 3 harness error (fork/exec/bind/train failures — not a verdict).
// $KAMEL_SOAK_IMPUTATIONS scales the chaos-phase load (default 2000);
// $KAMEL_SHARD_PORT_BASE moves the fixed worker ports (default 38731).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "shard/router.h"
#include "shard/worker.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::bench {
namespace {

constexpr int kNumShards = 4;
constexpr const char* kSnapshotPath = "/tmp/kamel_shard_chaos_snapshot.bin";

long TargetImputations() {
  if (const char* env = std::getenv("KAMEL_SOAK_IMPUTATIONS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return parsed;
  }
  return 2000;
}

uint16_t PortBase() {
  if (const char* env = std::getenv("KAMEL_SHARD_PORT_BASE")) {
    const long parsed = std::atol(env);
    if (parsed > 0 && parsed < 65536 - kNumShards) {
      return static_cast<uint16_t>(parsed);
    }
  }
  return 38731;
}

bool Progress() { return std::getenv("KAMEL_SOAK_PROGRESS") != nullptr; }

// Must match between the trainer, the router's local snapshot, and every
// worker child (snapshots do not persist options). Same shape as the
// chaos_soak fixture: a real height-1 pyramid so the partition has 4 key
// cells — one per worker — and every leaf has a replicated root ancestor.
KamelOptions ChaosKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 25;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 150;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

// ---------------------------------------------------------------------------
// Worker child: --worker <shard> <num_shards> <port> <snapshot_path>
// ---------------------------------------------------------------------------

std::atomic<bool> g_worker_stop{false};
void HandleWorkerStop(int) { g_worker_stop.store(true); }

int RunWorker(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr, "worker: bad argv\n");
    return 3;
  }
  shard::WorkerOptions options;
  options.shard = std::atoi(argv[2]);
  options.num_shards = std::atoi(argv[3]);
  options.port = static_cast<uint16_t>(std::atoi(argv[4]));
  options.kamel = ChaosKamelOptions();
  options.serving = {.num_threads = 2, .max_pending = 16,
                     .overload_policy = OverloadPolicy::kShed};
  shard::ShardWorker worker(options);
  if (const Status status = worker.Start(argv[5]); !status.ok()) {
    std::fprintf(stderr, "worker %d: start failed: %s\n", options.shard,
                 status.ToString().c_str());
    return 3;
  }
  // SIGTERM = clean drain at the end of the run; chaos kills use SIGKILL,
  // which by design never reaches this handler.
  signal(SIGTERM, HandleWorkerStop);
  signal(SIGINT, HandleWorkerStop);
  while (!g_worker_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  worker.Stop();
  return 0;
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

// Child pids, shared with the watchdog (which must reap before _Exit).
std::mutex g_children_mu;
std::vector<pid_t> g_children(kNumShards, -1);

void KillAllChildren(int sig) {
  std::lock_guard<std::mutex> lock(g_children_mu);
  for (pid_t& pid : g_children) {
    if (pid > 0) {
      kill(pid, sig);
      waitpid(pid, nullptr, sig == SIGKILL ? 0 : WNOHANG);
      if (sig == SIGKILL) pid = -1;
    }
  }
}

// Forks this binary back as one worker. Returns -1 on harness failure.
pid_t SpawnWorker(const char* self, int shard, uint16_t port) {
  const std::string shard_s = std::to_string(shard);
  const std::string num_s = std::to_string(kNumShards);
  const std::string port_s = std::to_string(port);
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return -1;
  }
  if (pid == 0) {
    const char* argv[] = {self,           "--worker",     shard_s.c_str(),
                          num_s.c_str(),  port_s.c_str(), kSnapshotPath,
                          nullptr};
    execv(self, const_cast<char**>(argv));
    std::perror("execv");
    _exit(3);
  }
  std::lock_guard<std::mutex> lock(g_children_mu);
  g_children[shard] = pid;
  return pid;
}

struct ChaosCounters {
  std::atomic<long> served{0};
  std::atomic<long> completed{0};  // watchdog heartbeat
  std::atomic<long> unexpected{0};
  std::atomic<bool> recovery_failed{false};
  std::atomic<int> kills{0};
  std::atomic<int> restarts{0};
  std::atomic<bool> chaos_done{false};
};

// Pushes imputations through the router until the target is reached AND
// the chaos schedule has finished. Every error is a contract violation:
// the router's ladder ends at router-local straight lines, never a
// Status, for well-formed input.
void ClientLoop(shard::ShardRouter* router,
                const std::vector<Trajectory>* inputs, int seed, long target,
                ChaosCounters* counters) {
  size_t next = static_cast<size_t>(seed);
  while (counters->served.load(std::memory_order_relaxed) < target ||
         !counters->chaos_done.load(std::memory_order_relaxed)) {
    Result<ImputedTrajectory> result =
        router->Impute((*inputs)[next++ % inputs->size()]);
    counters->completed.fetch_add(1, std::memory_order_relaxed);
    if (result.ok()) {
      counters->served.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters->unexpected.fetch_add(1);
      std::fprintf(stderr, "contract violation: routed impute failed: %s\n",
                   result.status().ToString().c_str());
    }
  }
}

bool WaitForServing(const shard::ShardRouter& router, int shard,
                    double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.ShardHealth()[shard] == HealthState::kServing) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

// One chaos round per worker: arm a net fault window against the live
// fleet, clear it, SIGKILL the round's victim mid-load, let the router
// degrade, restart the victim on its advertised port, and require it to
// probe back to SERVING. Every worker gets killed at least once.
void ChaosLoop(const char* self, shard::ShardRouter* router,
               const std::vector<uint16_t>* ports, long target,
               ChaosCounters* counters) {
  FaultInjector& injector = FaultInjector::Instance();
  const int rounds =
      std::max(kNumShards, static_cast<int>(target / 500));
  for (int round = 0; round < rounds; ++round) {
    // Fault window against healthy workers: stragglers (drives hedging),
    // dropped request frames (drives per-call deadlines + retries), and
    // refused connects (drives the connect retry schedule + failover).
    const char* fault = (round % 3 == 0)   ? "net.recv.delay"
                        : (round % 3 == 1) ? "net.send.drop"
                                           : "net.connect";
    injector.Arm(fault, /*skip=*/0, /*count=*/round % 3 == 0 ? -1 : 8);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    injector.Reset();

    const int victim = round % kNumShards;
    pid_t pid;
    {
      std::lock_guard<std::mutex> lock(g_children_mu);
      pid = g_children[victim];
    }
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      {
        std::lock_guard<std::mutex> lock(g_children_mu);
        g_children[victim] = -1;
      }
      counters->kills.fetch_add(1);
      if (Progress()) {
        std::fprintf(stderr, "[chaos] round %d: killed worker %d\n", round,
                     victim);
      }
    }
    // Let clients run against the 3-shard fleet for a while.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));

    if (SpawnWorker(self, victim, (*ports)[victim]) < 0) {
      counters->recovery_failed.store(true);
      break;
    }
    counters->restarts.fetch_add(1);
    if (!WaitForServing(*router, victim, 60.0)) {
      std::fprintf(stderr,
                   "FAIL: worker %d did not return to SERVING after "
                   "restart (round %d)\n",
                   victim, round);
      counters->recovery_failed.store(true);
      break;
    }
    if (Progress()) {
      std::fprintf(stderr, "[chaos] round %d: worker %d back to SERVING\n",
                   round, victim);
    }
  }
  injector.Reset();
  counters->chaos_done.store(true);
}

// Byte-identity sweep: every input imputed through the router must match
// the single-process result bit for bit (stats.seconds excepted).
bool IdenticalWhenHealthy(const KamelSnapshot& snapshot,
                          shard::ShardRouter* router,
                          const std::vector<Trajectory>& inputs,
                          const char* phase) {
  for (size_t i = 0; i < inputs.size(); ++i) {
    Result<ImputedTrajectory> direct = snapshot.Impute(inputs[i]);
    Result<ImputedTrajectory> routed = router->Impute(inputs[i]);
    if (!direct.ok() || !routed.ok()) {
      std::fprintf(stderr, "FAIL(%s): impute error on input %zu: %s / %s\n",
                   phase, i, direct.status().ToString().c_str(),
                   routed.status().ToString().c_str());
      return false;
    }
    const auto& a = direct->trajectory.points;
    const auto& b = routed->trajectory.points;
    bool same = a.size() == b.size() &&
                direct->stats.bert_calls == routed->stats.bert_calls &&
                direct->stats.full_model_segments ==
                    routed->stats.full_model_segments &&
                direct->stats.failed_segments == routed->stats.failed_segments;
    for (size_t p = 0; same && p < a.size(); ++p) {
      same = a[p].pos.lat == b[p].pos.lat && a[p].pos.lng == b[p].pos.lng &&
             a[p].time == b[p].time;
    }
    if (!same) {
      std::fprintf(stderr,
                   "FAIL(%s): routed result differs from single-process "
                   "on input %zu\n",
                   phase, i);
      return false;
    }
  }
  return true;
}

int RunSupervisor(const char* self) {
  const long target = TargetImputations();
  const uint16_t port_base = PortBase();

  // Train once, persist the snapshot all workers load.
  const SimScenario scenario = BuildScenario(MiniSpec());
  Kamel trained(ChaosKamelOptions());
  if (const Status status = trained.Train(scenario.train); !status.ok()) {
    std::fprintf(stderr, "train failed: %s\n", status.ToString().c_str());
    return 3;
  }
  if (const Status status = trained.SaveToFile(kSnapshotPath);
      !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 3;
  }
  auto snapshot = trained.Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 3;
  }

  std::vector<Trajectory> inputs;
  for (const Trajectory& trajectory : scenario.test.trajectories) {
    inputs.push_back(Sparsify(trajectory, 400.0));
  }

  // Fleet on fixed ports (a restarted worker must come back on the port
  // the router knows; SO_REUSEADDR makes the re-bind immediate).
  std::vector<uint16_t> ports;
  std::vector<shard::ShardEndpoint> endpoints;
  for (int s = 0; s < kNumShards; ++s) {
    ports.push_back(static_cast<uint16_t>(port_base + s));
    endpoints.push_back({"127.0.0.1", ports.back()});
    if (SpawnWorker(self, s, ports[s]) < 0) return 3;
  }

  shard::RouterOptions router_options;
  router_options.call_deadline_s = 30.0;  // single-core host under load
  shard::ShardRouter router(*snapshot, endpoints, router_options);
  if (const Status status = router.WaitHealthy(120.0); !status.ok()) {
    std::fprintf(stderr, "fleet never reached SERVING: %s\n",
                 status.ToString().c_str());
    KillAllChildren(SIGKILL);
    return 3;
  }
  if (Progress()) std::fprintf(stderr, "[chaos] fleet SERVING\n");

  // Gate 1: healthy fleet, byte-identical output.
  if (!IdenticalWhenHealthy(**snapshot, &router, inputs, "pre-chaos")) {
    KillAllChildren(SIGKILL);
    return 1;
  }

  ChaosCounters counters;

  // Watchdog: chaos rounds are seconds each; two minutes of global
  // silence means the router wedged on a dead shard. _Exit skips
  // destructors on purpose — they may be what is stuck.
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog([&] {
    long last = -1;
    int stalled_polls = 0;
    while (!stop_watchdog.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      const long now = counters.completed.load();
      stalled_polls = (now == last) ? stalled_polls + 1 : 0;
      last = now;
      if (Progress()) {
        std::fprintf(stderr, "[chaos] %ld/%ld served, %d kills\n",
                     counters.served.load(), target, counters.kills.load());
      }
      if (stalled_polls >= 240) {
        std::fprintf(stderr,
                     "watchdog: no progress past %ld imputations in 120s\n",
                     now);
        KillAllChildren(SIGKILL);
        std::_Exit(2);
      }
    }
  });

  std::thread chaos(ChaosLoop, self, &router, &ports, target, &counters);
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back(ClientLoop, &router, &inputs, i * 13, target,
                         &counters);
  }
  for (std::thread& client : clients) client.join();
  chaos.join();

  // Gate 2 ran inside the chaos loop (SERVING after every restart).
  // Gate 3: faults cleared, full fleet — byte-identical again.
  FaultInjector::Instance().Reset();
  bool identical = false;
  if (router.WaitHealthy(60.0).ok()) {
    identical = IdenticalWhenHealthy(**snapshot, &router, inputs,
                                     "post-chaos");
  } else {
    std::fprintf(stderr, "FAIL: fleet not SERVING after chaos cleared\n");
  }

  stop_watchdog.store(true);
  watchdog.join();
  KillAllChildren(SIGTERM);
  KillAllChildren(SIGKILL);

  const shard::RouterStats stats = router.stats();
  std::printf(
      "shard chaos: %ld served of %ld attempts | %d kills, %d restarts | "
      "router: %lld calls, %lld retries, %lld hedges (%lld won), "
      "%lld failovers, %lld linear-fallback gaps\n",
      counters.served.load(), counters.completed.load(),
      counters.kills.load(), counters.restarts.load(),
      static_cast<long long>(stats.remote_calls),
      static_cast<long long>(stats.retries),
      static_cast<long long>(stats.hedges),
      static_cast<long long>(stats.hedge_wins),
      static_cast<long long>(stats.failovers),
      static_cast<long long>(stats.linear_fallback_gaps));

  if (counters.unexpected.load() > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld imputations failed outside the degradation "
                 "contract\n",
                 counters.unexpected.load());
    return 1;
  }
  if (counters.recovery_failed.load()) return 1;
  if (!identical) return 1;
  std::printf("shard chaos: PASS (%d kill/restart cycles survived)\n",
              counters.kills.load());
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    return kamel::bench::RunWorker(argc, argv);
  }
  // Re-exec through the stable self path, not argv[0] (which may be
  // relative to a cwd the children do not share).
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) {
    std::perror("readlink /proc/self/exe");
    return 3;
  }
  self[n] = '\0';
  return kamel::bench::RunSupervisor(self);
}
