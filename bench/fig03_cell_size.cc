// Figure 3(d) + Section 3.2: accuracy vs hexagon cell size. Runs the
// auto-tuner's sweep on a reduced Porto-style workload and reports the
// optimum it would pick — both extremes of the size spectrum should lose
// to a middle value.
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/cell_size_tuner.h"

namespace kamel::bench {
namespace {

int Run() {
  // A reduced city so the 25 m candidate's vocabulary stays trainable in
  // bench time.
  ScenarioSpec spec = PortoLikeSpec(/*seed=*/23);
  spec.name = "porto-lite";
  spec.network.width_m = 1700.0;
  spec.network.height_m = 1700.0;
  spec.trips.num_trips = 260;
  spec.trips.min_trip_m = 1000.0;
  const SimScenario scenario = BuildScenario(spec);

  CellSizeTunerOptions tuner;
  tuner.candidate_edges_m = {25.0, 50.0, 75.0, 100.0, 150.0, 200.0};
  tuner.base = BenchKamelOptions();
  tuner.base.bert.train.steps = 300;
  tuner.base.pyramid_height = 0;
  tuner.base.pyramid_levels = 1;
  tuner.base.model_token_threshold = 250;
  tuner.sample_fraction = 0.6;
  tuner.sparse_distance_m = 800.0;
  tuner.delta_m = 50.0;

  TrajectoryDataset validation = LimitedTest(scenario.test);
  auto results = TuneCellSize(scenario.train, validation, tuner);
  if (!results.ok()) {
    std::fprintf(stderr, "tuner failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  Table table("Figure 3(d): accuracy vs cell size",
              {"hex_edge_m", "recall", "precision", "distinct_tokens"});
  for (const CellSizeResult& r : *results) {
    table.AddRow({Table::Num(r.edge_m, 0), Table::Num(r.recall),
                  Table::Num(r.precision), std::to_string(r.vocab_cells)});
  }
  Emit(table, "fig03_cell_size");
  std::printf("auto-tuner picks H = %.0f m\n", PickBestCellSize(*results));
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
