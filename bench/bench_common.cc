#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace kamel::bench {

namespace {
int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoll(value);
}
}  // namespace

size_t TestLimit() {
  return static_cast<size_t>(EnvInt("KAMEL_BENCH_TEST_LIMIT", 24));
}

std::vector<double> SparsenessSweep() {
  const int64_t steps = EnvInt("KAMEL_BENCH_SPARSE_STEPS", 0);
  if (steps > 0) {
    // Thinned sweep: endpoints plus evenly spaced interior values.
    std::vector<double> out;
    for (int64_t i = 0; i < steps; ++i) {
      out.push_back(500.0 + (4000.0 - 500.0) * i /
                                std::max<int64_t>(1, steps - 1));
    }
    return out;
  }
  return {500, 1000, 1500, 2000, 2500, 3000, 3500, 4000};
}

TrajectoryDataset LimitedTest(const TrajectoryDataset& test) {
  TrajectoryDataset out;
  const size_t limit = TestLimit();
  for (size_t i = 0; i < test.trajectories.size() && i < limit; ++i) {
    out.trajectories.push_back(test.trajectories[i]);
  }
  return out;
}

KamelOptions BenchOptionsFor(const ScenarioSpec& spec) {
  KamelOptions options = BenchKamelOptions();
  if (spec.name.find("jakarta") != std::string::npos) {
    options.bert.train.steps = 1800;
    options.model_token_threshold = 3600;
  }
  return options;
}

KamelOptions VariantBenchOptions() {
  KamelOptions options = BenchKamelOptions();
  options.bert.train.steps = 1800;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  return options;
}

double DefaultDelta(const std::string& scenario_name) {
  return scenario_name.find("jakarta") != std::string::npos ? 25.0 : 50.0;
}

void Emit(const Table& table, const std::string& slug) {
  table.Print();
  std::fputs("\n", stdout);
  const char* dir = std::getenv("KAMEL_BENCH_CSV_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    const std::string path = std::string(dir) + "/" + slug + ".csv";
    const Status status = table.WriteCsv(path);
    if (!status.ok()) {
      KAMEL_LOG(Warning) << "csv write failed: " << status.ToString();
    }
  }
}

// ---- bench JSON baselines --------------------------------------------

Json Json::Str(std::string v) {
  Json j;
  j.kind_ = Kind::kStr;
  j.str_ = std::move(v);
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::Num(double v, int decimals) {
  Json j;
  j.kind_ = Kind::kNum;
  j.num_ = v;
  j.decimals_ = decimals;
  return j;
}

Json Json::Bool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Object(std::vector<std::pair<std::string, Json>> fields) {
  Json j;
  j.kind_ = Kind::kObject;
  j.fields_ = std::move(fields);
  return j;
}

Json Json::Array(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

namespace {
void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}
}  // namespace

// depth 0 = the document object, depth 1 = its field values (arrays get
// one entry per line), depth >= 2 = inline. That reproduces the
// committed-baseline layout: short diffs, one measurement row per line.
void Json::Append(std::string* out, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::kStr:
      AppendEscaped(out, str_);
      break;
    case Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out->append(buf);
      break;
    case Kind::kNum:
      std::snprintf(buf, sizeof(buf), "%.*f", decimals_, num_);
      out->append(buf);
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kObject: {
      const bool multiline = depth == 0;
      out->push_back('{');
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(multiline ? "\n  " : (i > 0 ? " " : ""));
        AppendEscaped(out, fields_[i].first);
        out->append(": ");
        fields_[i].second.Append(out, depth + 1);
      }
      if (multiline) out->push_back('\n');
      out->push_back('}');
      break;
    }
    case Kind::kArray: {
      const bool multiline = depth <= 1;
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(multiline ? "\n    " : (i > 0 ? " " : ""));
        items_[i].Append(out, depth + 1);
      }
      if (multiline) out->append("\n  ");
      out->push_back(']');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  Append(&out, 0);
  out.push_back('\n');
  return out;
}

void EmitBenchJson(const Json& doc) {
  const char* path = std::getenv("KAMEL_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const std::string text = doc.Dump();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace kamel::bench
