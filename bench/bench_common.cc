#include "bench/bench_common.h"

#include <cstdlib>

#include "common/logging.h"

namespace kamel::bench {

namespace {
int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoll(value);
}
}  // namespace

size_t TestLimit() {
  return static_cast<size_t>(EnvInt("KAMEL_BENCH_TEST_LIMIT", 24));
}

std::vector<double> SparsenessSweep() {
  const int64_t steps = EnvInt("KAMEL_BENCH_SPARSE_STEPS", 0);
  if (steps > 0) {
    // Thinned sweep: endpoints plus evenly spaced interior values.
    std::vector<double> out;
    for (int64_t i = 0; i < steps; ++i) {
      out.push_back(500.0 + (4000.0 - 500.0) * i /
                                std::max<int64_t>(1, steps - 1));
    }
    return out;
  }
  return {500, 1000, 1500, 2000, 2500, 3000, 3500, 4000};
}

TrajectoryDataset LimitedTest(const TrajectoryDataset& test) {
  TrajectoryDataset out;
  const size_t limit = TestLimit();
  for (size_t i = 0; i < test.trajectories.size() && i < limit; ++i) {
    out.trajectories.push_back(test.trajectories[i]);
  }
  return out;
}

KamelOptions BenchOptionsFor(const ScenarioSpec& spec) {
  KamelOptions options = BenchKamelOptions();
  if (spec.name.find("jakarta") != std::string::npos) {
    options.bert.train.steps = 1800;
    options.model_token_threshold = 3600;
  }
  return options;
}

KamelOptions VariantBenchOptions() {
  KamelOptions options = BenchKamelOptions();
  options.bert.train.steps = 1800;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  return options;
}

double DefaultDelta(const std::string& scenario_name) {
  return scenario_name.find("jakarta") != std::string::npos ? 25.0 : 50.0;
}

void Emit(const Table& table, const std::string& slug) {
  table.Print();
  std::fputs("\n", stdout);
  const char* dir = std::getenv("KAMEL_BENCH_CSV_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    const std::string path = std::string(dir) + "/" + slug + ".csv";
    const Status status = table.WriteCsv(path);
    if (!status.ok()) {
      KAMEL_LOG(Warning) << "csv write failed: " << status.ToString();
    }
  }
}

}  // namespace kamel::bench
