// Chaos soak: drives >= 10k imputations (KAMEL_SOAK_IMPUTATIONS
// overrides) through one ServingEngine from batch clients and a
// streaming session while a chaos thread cycles injected faults through
// `bert.forward`, `repo.model.load`, and `snapshot.read.section` and
// hot-swaps the serving snapshot mid-traffic. Asserts that the system
// bends instead of breaking:
//
//   * no crash, hang, or sanitizer report (run it under ASan/TSan too);
//   * the admission queue never exceeds its bound (exit 3);
//   * degradation is monotone: a request under fault slides down the
//     ladder (ancestor model, then straight lines) but never fails with
//     anything other than the advertised overload/drain codes (exit 1);
//   * after the faults clear, the engine works back to full-model
//     SERVING on its own (exit 1 if it does not).
//
// A watchdog aborts with exit 2 if global progress stalls — a deadlock
// in admission, the breaker, or the pool would otherwise hang CI.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::bench {
namespace {

long TargetImputations() {
  if (const char* env = std::getenv("KAMEL_SOAK_IMPUTATIONS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return parsed;
  }
  return 10000;
}

// Real (if tiny) pyramid so the degradation ladder has rungs to fall
// through: height 1, both levels maintained, root model guaranteed.
KamelOptions SoakTrainOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 25;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 150;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

// Lazy serving with a deliberately tiny residency so eviction/reload
// churn keeps `repo.model.load` hot, a single retry, and a cooldown
// short enough that breakers re-probe within the soak.
KamelOptions SoakServeOptions() {
  KamelOptions options = SoakTrainOptions();
  options.max_resident_models = 4;
  options.model_load_retries = 1;
  options.model_load_backoff_ms = 0.01;
  options.model_breaker_cooldown_s = 0.05;
  return options;
}

struct SoakCounters {
  std::atomic<long> served{0};     // successful imputations (the target)
  std::atomic<long> completed{0};  // watchdog heartbeat (all sources)
  std::atomic<long> ok{0};
  std::atomic<long> shed{0};
  std::atomic<long> unavailable{0};
  std::atomic<long> unexpected{0};
  std::atomic<long> streamed{0};
  std::atomic<long> degraded_segments{0};
  std::atomic<long> model_segments{0};
  std::atomic<bool> bound_violated{false};
};

void ClientLoop(ServingEngine* engine, const std::vector<Trajectory>* inputs,
                int seed, long target, SoakCounters* counters) {
  const int bound = engine->serving_options().max_pending;
  size_t next = static_cast<size_t>(seed);
  std::vector<std::future<Result<ImputedTrajectory>>> burst;
  while (counters->served.load(std::memory_order_relaxed) < target) {
    burst.clear();
    for (int i = 0; i < 8; ++i) {
      burst.push_back(
          engine->ImputeAsync((*inputs)[next++ % inputs->size()]));
    }
    if (engine->stats().peak_pending > bound) {
      counters->bound_violated.store(true);
    }
    for (auto& future : burst) {
      Result<ImputedTrajectory> result = future.get();
      counters->completed.fetch_add(1, std::memory_order_relaxed);
      if (result.ok()) {
        counters->ok.fetch_add(1);
        counters->served.fetch_add(1, std::memory_order_relaxed);
        counters->degraded_segments.fetch_add(
            result->stats.ancestor_segments +
            result->stats.overload_segments +
            result->stats.no_model_segments);
        counters->model_segments.fetch_add(
            result->stats.full_model_segments);
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        counters->shed.fetch_add(1);
        // Do what the status message tells real clients to do.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      } else if (result.status().code() == StatusCode::kUnavailable) {
        counters->unavailable.fetch_add(1);
      } else {
        counters->unexpected.fetch_add(1);
        std::fprintf(stderr, "unexpected imputation error: %s\n",
                     result.status().ToString().c_str());
      }
    }
  }
}

void StreamLoop(ServingEngine* engine, const std::vector<Trajectory>* inputs,
                long target, SoakCounters* counters) {
  FunctionSink sink([counters](int64_t, ImputedTrajectory) {
    counters->streamed.fetch_add(1);
    counters->served.fetch_add(1, std::memory_order_relaxed);
    counters->completed.fetch_add(1, std::memory_order_relaxed);
  });
  StreamingSession session(engine, &sink);
  int64_t object_id = 0;
  size_t next = 0;
  while (counters->served.load(std::memory_order_relaxed) < target) {
    // Streaming bypasses the admission gate, so throttle here: never run
    // more than a handful of emissions ahead of the pool, or the session
    // floods the shared queue and starves the batch clients' futures.
    while (object_id - counters->streamed.load(std::memory_order_relaxed) >
           8) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Trajectory& trajectory = (*inputs)[next++ % inputs->size()];
    for (const TrajPoint& point : trajectory.points) {
      // Push can only refuse with ResourceExhausted (its own buffer
      // bounds), which the caps below make unreachable here.
      if (!session.Push(object_id, point).ok()) break;
    }
    if (!session.EndTrajectory(object_id).ok()) break;
    ++object_id;
  }
  session.Drain();
}

// Cycles fault phases and hot-swaps snapshots until told to stop. The
// reload path runs with `snapshot.read.section` armed half the time, so
// some swaps fail cleanly and some land mid-traffic.
void ChaosLoop(ServingEngine* engine, const std::string& snapshot_path,
               std::atomic<bool>* stop) {
  FaultInjector& injector = FaultInjector::Instance();
  Kamel reloader(SoakServeOptions());
  int round = 0;
  while (!stop->load()) {
    const char* fault = (round % 3 == 0)   ? "bert.forward"
                        : (round % 3 == 1) ? "repo.model.load"
                                           : "snapshot.read.section";
    {
      ScopedFault armed(fault, 0, /*count=*/-1);
      if (round % 3 == 2) {
        // Reload under fault: must fail cleanly, never poison the
        // engine's current snapshot.
        if (reloader.LoadFromFile(snapshot_path).ok()) {
          std::fprintf(stderr, "reload unexpectedly survived fault\n");
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    injector.Reset();
    if (round % 3 == 2 && reloader.LoadFromFile(snapshot_path).ok()) {
      if (auto fresh = reloader.Snapshot(); fresh.ok()) {
        engine->UpdateSnapshot(*fresh);  // hot swap mid-traffic
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ++round;
  }
  injector.Reset();
}

int Run() {
  const long target = TargetImputations();
  const SimScenario scenario = BuildScenario(MiniSpec());
  Kamel trained(SoakTrainOptions());
  if (const Status status = trained.Train(scenario.train); !status.ok()) {
    std::fprintf(stderr, "train failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string snapshot_path = "/tmp/kamel_chaos_soak_snapshot.bin";
  if (const Status status = trained.SaveToFile(snapshot_path);
      !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  Kamel serving(SoakServeOptions());
  if (const Status status = serving.LoadFromFile(snapshot_path);
      !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto snapshot = serving.Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }

  std::vector<Trajectory> inputs;
  for (const Trajectory& trajectory : scenario.test.trajectories) {
    inputs.push_back(Sparsify(trajectory, 400.0));
  }

  // Bound below the clients' combined burst width (3 x 8) so the soak
  // actually drives the engine into shedding part of the time.
  ServingEngine engine(*snapshot,
                       {.num_threads = 4,
                        .max_pending = 16,
                        .overload_policy = OverloadPolicy::kShed});
  SoakCounters counters;
  std::atomic<bool> stop_chaos{false};

  // Watchdog: a stall of 60 s with faults this small means a deadlock;
  // _Exit skips destructors on purpose (they may be what is stuck).
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog([&] {
    long last = -1;
    int stalled_polls = 0;
    while (!stop_watchdog.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      const long now = counters.completed.load();
      stalled_polls = (now == last) ? stalled_polls + 1 : 0;
      last = now;
      if (std::getenv("KAMEL_SOAK_PROGRESS") != nullptr) {
        std::fprintf(stderr, "[soak] %ld/%ld served (%ld completed)\n",
                     counters.served.load(), target, now);
      }
      if (stalled_polls >= 120) {
        std::fprintf(stderr,
                     "watchdog: no progress past %ld imputations in 60s "
                     "-- deadlock\n",
                     now);
        std::_Exit(2);
      }
    }
  });

  std::thread chaos(ChaosLoop, &engine, snapshot_path, &stop_chaos);
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back(ClientLoop, &engine, &inputs, i * 7, target,
                         &counters);
  }
  std::thread streamer(StreamLoop, &engine, &inputs, target, &counters);

  for (std::thread& client : clients) client.join();
  if (std::getenv("KAMEL_SOAK_PROGRESS") != nullptr) {
    std::fprintf(stderr, "[soak] clients joined\n");
  }
  streamer.join();
  if (std::getenv("KAMEL_SOAK_PROGRESS") != nullptr) {
    std::fprintf(stderr, "[soak] streamer joined\n");
  }
  stop_chaos.store(true);
  chaos.join();

  // Faults are gone; after the breaker cooldown the engine must claw its
  // way back to full-model SERVING unassisted. Imputing the whole input
  // set re-probes (and re-closes) every breaker traffic can reach.
  FaultInjector::Instance().Reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    bool all_full = true;
    for (const Trajectory& trajectory : inputs) {
      auto result = engine.Impute(trajectory);
      if (!result.ok()) {
        std::fprintf(stderr, "post-chaos imputation failed: %s\n",
                     result.status().ToString().c_str());
        stop_watchdog.store(true);
        watchdog.join();
        return 1;
      }
      all_full = all_full && result->stats.full_model_segments ==
                                 result->stats.segments;
    }
    recovered = all_full && engine.health() == HealthState::kServing;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop_watchdog.store(true);
  watchdog.join();

  std::printf(
      "chaos soak: %ld served of %ld attempts (%ld ok, %ld shed, "
      "%ld unavailable, %ld streamed) | segments: %ld full-model, "
      "%ld degraded | peak_pending %d / bound %d\n",
      counters.served.load(), counters.completed.load(), counters.ok.load(),
      counters.shed.load(),
      counters.unavailable.load(), counters.streamed.load(),
      counters.model_segments.load(), counters.degraded_segments.load(),
      engine.stats().peak_pending, engine.serving_options().max_pending);

  if (counters.bound_violated.load() ||
      engine.stats().peak_pending > engine.serving_options().max_pending) {
    std::fprintf(stderr, "FAIL: admission queue exceeded its bound\n");
    return 3;
  }
  if (counters.unexpected.load() > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld imputations failed outside the degradation "
                 "ladder's advertised codes\n",
                 counters.unexpected.load());
    return 1;
  }
  if (!recovered) {
    std::fprintf(stderr,
                 "FAIL: engine did not return to full-model SERVING "
                 "after faults cleared (health=%s)\n",
                 ToString(engine.health()));
    return 1;
  }
  std::printf("chaos soak: PASS (recovered to SERVING)\n");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
