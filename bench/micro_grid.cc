// Microbenchmarks of the tokenization substrate: point->cell conversion
// (the paper stresses it is constant-time, Section 3.1), neighbor and
// disk enumeration, and grid distance, for both grid families.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "grid/hex_grid.h"
#include "grid/square_grid.h"

namespace kamel {
namespace {

template <typename Grid>
void BM_CellOf(benchmark::State& state) {
  Grid grid(75.0);
  Rng rng(2);
  std::vector<Vec2> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back({rng.NextDouble(-5000, 5000),
                      rng.NextDouble(-5000, 5000)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.CellOf(points[i++ & 1023]));
  }
}
BENCHMARK(BM_CellOf<HexGrid>);
BENCHMARK(BM_CellOf<SquareGrid>);

void BM_HexDisk(benchmark::State& state) {
  HexGrid grid(75.0);
  const CellId center = grid.CellOf({0.0, 0.0});
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Disk(center, k));
  }
}
BENCHMARK(BM_HexDisk)->Arg(2)->Arg(5)->Arg(10);

void BM_HexGridDistance(benchmark::State& state) {
  HexGrid grid(75.0);
  const CellId a = grid.CellOf({-3000.0, 1200.0});
  const CellId b = grid.CellOf({2500.0, -700.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.GridDistance(a, b));
  }
}
BENCHMARK(BM_HexGridDistance);

}  // namespace
}  // namespace kamel

BENCHMARK_MAIN();
