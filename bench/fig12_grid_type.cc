// Figure 12-III: hexagons (H3-style) vs squares (S2-style) tokenization.
// The square edge is derived for equal cell area (the paper's 120 m
// squares vs 75 m hexagons).
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

int Run() {
  const ScenarioSpec spec = JakartaLikeSpec();
  const double delta = DefaultDelta(spec.name);

  struct Variant {
    const char* label;
    GridType grid;
  };
  Table sweep_table("Figure 12-III(a-c): grid type vs sparseness",
                    {"grid", "sparseness_m", "recall", "precision",
                     "failure_rate"});
  Table delta_table("Figure 12-III(d-e): grid type vs threshold",
                    {"grid", "delta_m", "recall", "precision"});

  for (const Variant& variant :
       {Variant{"hex(H3)", GridType::kHex},
        Variant{"square(S2)", GridType::kSquare}}) {
    KamelOptions options = VariantBenchOptions();
    options.grid_type = variant.grid;
    auto systems = PrepareBenchSystems(spec, options);
    if (!systems.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   systems.status().ToString().c_str());
      return 1;
    }
    const TrajectoryDataset test = LimitedTest(systems->sim.test);
    Evaluator evaluator(systems->sim.projection.get());

    for (double sparseness : SparsenessSweep()) {
      auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                     sparseness);
      if (!run.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      ScoreConfig score;
      score.delta_m = delta;
      const EvalResult result = evaluator.Score(*run, score);
      sweep_table.AddRow({variant.label, Table::Num(sparseness, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision),
                          Table::Num(result.failure_rate)});
    }

    auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                   /*sparse=*/1000.0);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    for (double d : {10.0, 25.0, 50.0, 75.0, 100.0}) {
      ScoreConfig score;
      score.delta_m = d;
      const EvalResult result = evaluator.Score(*run, score);
      delta_table.AddRow({variant.label, Table::Num(d, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision)});
    }
  }
  Emit(sweep_table, "fig12_grid_type_sparseness");
  Emit(delta_table, "fig12_grid_type_threshold");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
