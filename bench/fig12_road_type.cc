// Figure 12-I/II: straight vs curved segments — the sparseness and
// threshold sweeps restricted by road type (Jakarta scenario, as in the
// paper; Porto behaves alike).
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

const char* ClassName(SegmentClass c) {
  return c == SegmentClass::kStraight ? "straight" : "curved";
}

int Run() {
  const ScenarioSpec spec = JakartaLikeSpec();
  auto systems = PrepareBenchSystems(spec, BenchOptionsFor(spec));
  if (!systems.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 systems.status().ToString().c_str());
    return 1;
  }
  const TrajectoryDataset test = LimitedTest(systems->sim.test);
  Evaluator evaluator(systems->sim.projection.get());
  const double delta = DefaultDelta(systems->sim.name);

  Table sweep_table("Figure 12-I/II(a-c): road type vs sparseness",
                    {"road_type", "sparseness_m", "method", "recall",
                     "precision", "failure_rate"});
  for (double sparseness : SparsenessSweep()) {
    for (ImputationMethod* method : systems->AllMethods()) {
      auto run = evaluator.RunMethod(method, test, sparseness);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method->name().c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      for (SegmentClass cls :
           {SegmentClass::kStraight, SegmentClass::kCurved}) {
        ScoreConfig score;
        score.delta_m = delta;
        score.segment_class = cls;
        const EvalResult result = evaluator.Score(*run, score);
        sweep_table.AddRow({ClassName(cls), Table::Num(sparseness, 0),
                            method->name(), Table::Num(result.recall),
                            Table::Num(result.precision),
                            Table::Num(result.failure_rate)});
      }
    }
  }
  Emit(sweep_table, "fig12_road_type_sparseness");

  Table delta_table("Figure 12-I/II(d-e): road type vs threshold",
                    {"road_type", "delta_m", "method", "recall",
                     "precision"});
  for (ImputationMethod* method : systems->AllMethods()) {
    auto run = evaluator.RunMethod(method, test, /*sparse=*/1000.0);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method->name().c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    for (double d : {10.0, 25.0, 50.0, 75.0, 100.0}) {
      for (SegmentClass cls :
           {SegmentClass::kStraight, SegmentClass::kCurved}) {
        ScoreConfig score;
        score.delta_m = d;
        score.segment_class = cls;
        const EvalResult result = evaluator.Score(*run, score);
        delta_table.AddRow({ClassName(cls), Table::Num(d, 0),
                            method->name(), Table::Num(result.recall),
                            Table::Num(result.precision)});
      }
    }
  }
  Emit(delta_table, "fig12_road_type_threshold");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
