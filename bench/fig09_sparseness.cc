// Figure 9: impact of data sparseness on recall, precision, and failure
// rate, for both datasets and all four methods.
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

int Run() {
  Table table("Figure 9: recall/precision/failure vs sparseness",
              {"dataset", "sparseness_m", "method", "recall", "precision",
               "failure_rate"});
  for (const ScenarioSpec& spec : {PortoLikeSpec(), JakartaLikeSpec()}) {
    auto systems = PrepareBenchSystems(spec, BenchOptionsFor(spec));
    if (!systems.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   systems.status().ToString().c_str());
      return 1;
    }
    const TrajectoryDataset test = LimitedTest(systems->sim.test);
    Evaluator evaluator(systems->sim.projection.get());
    ScoreConfig score;
    score.delta_m = DefaultDelta(spec.name);

    for (double sparseness : SparsenessSweep()) {
      for (ImputationMethod* method : systems->AllMethods()) {
        auto run = evaluator.RunMethod(method, test, sparseness);
        if (!run.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", method->name().c_str(),
                       run.status().ToString().c_str());
          return 1;
        }
        const EvalResult result = evaluator.Score(*run, score);
        table.AddRow({spec.name, Table::Num(sparseness, 0), method->name(),
                      Table::Num(result.recall), Table::Num(result.precision),
                      Table::Num(result.failure_rate)});
      }
    }
  }
  Emit(table, "fig09_sparseness");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
