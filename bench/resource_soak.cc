// Resource-exhaustion soak: drives the system through sustained disk,
// memory, and IO-error pressure and requires it to bend, not break.
// Two phases, both bounded by KAMEL_SOAK_IMPUTATIONS (default 2000):
//
//   1. Ingestion under a shrinking disk quota: durable ingestion
//      (WAL + checkpoint) takes submits while the budget is ratcheted
//      down and back up. Every submit must either be acknowledged or
//      refused with the advertised kResourceExhausted — nothing else.
//      Afterwards the pipeline is crashed (WAL dropped, state rebuilt
//      via OpenDurableIngestion) and the gate is ZERO acked-data loss:
//      the recovered system must impute byte-identically to the
//      pre-crash one.
//
//   2. Serving under a memory ceiling and EIO bursts: a byte-budgeted
//      model cache (half of what the working set needs) serves client
//      threads while a chaos thread arms errno-level EIO on the model
//      demand-load path in bursts. Requests must stay inside the
//      degradation ladder's advertised codes; once the faults clear the
//      engine must return to full-model SERVING on its own and produce
//      output byte-identical to its own pre-chaos pass.
//
// Exit 0 pass, 1 resource-governance violation, 2 watchdog deadlock.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/io_watchdog.h"
#include "core/kamel.h"
#include "core/maintenance.h"
#include "eval/scenario.h"
#include "io/trajectory_csv.h"
#include "io/wal.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::bench {
namespace {

long TargetImputations() {
  if (const char* env = std::getenv("KAMEL_SOAK_IMPUTATIONS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return parsed;
  }
  return 2000;
}

bool Progress() { return std::getenv("KAMEL_SOAK_PROGRESS") != nullptr; }

// Tiny ingestion-side models: submits retrain in tens of milliseconds,
// so the soak cycles many train/checkpoint/GC rounds.
KamelOptions IngestOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 40;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.train.steps = 30;
  options.bert.train.batch_size = 4;
  options.seed = 42;
  return options;
}

// Serving side: a real (if small) pyramid so the ladder has rungs.
KamelOptions ServeTrainOptions() {
  KamelOptions options = IngestOptions();
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 10;
  return options;
}

std::string Fingerprint(Kamel* system, const TrajectoryDataset& probes) {
  auto imputed = system->ImputeBatch(probes);
  if (!imputed.ok()) return "";
  TrajectoryDataset out;
  for (const ImputedTrajectory& one : *imputed) {
    out.trajectories.push_back(one.trajectory);
  }
  return io::WriteCsvString(out);
}

bool Identical(const ImputedTrajectory& a, const ImputedTrajectory& b) {
  if (a.trajectory.points.size() != b.trajectory.points.size()) return false;
  for (size_t i = 0; i < a.trajectory.points.size(); ++i) {
    if (a.trajectory.points[i].pos.lat != b.trajectory.points[i].pos.lat ||
        a.trajectory.points[i].pos.lng != b.trajectory.points[i].pos.lng ||
        a.trajectory.points[i].time != b.trajectory.points[i].time) {
      return false;
    }
  }
  return true;
}

// ---- phase 1: ingestion under a shrinking disk quota ------------------

int IngestPhase(const SimScenario& scenario, long submits) {
  const std::string dir = "/tmp/kamel_resource_soak";
  std::filesystem::remove_all(dir);
  const std::string checkpoint = dir + "/checkpoint.bin";

  MaintenanceOptions policy;
  policy.min_batch_trajectories = 8;  // thresholds fire during the soak

  WalOptions wal_options{.dir = dir + "/wal"};
  wal_options.segment_bytes = 8192;       // plenty of GC-able segments
  wal_options.gc_pressure_fraction = 0.5;

  Kamel system(IngestOptions());
  MaintenanceScheduler scheduler(&system, policy);
  auto wal = OpenDurableIngestion(&system, &scheduler, wal_options,
                                  checkpoint);
  if (!wal.ok()) {
    std::fprintf(stderr, "ingest open failed: %s\n",
                 wal.status().ToString().c_str());
    return 1;
  }

  long acked = 0;
  long shed = 0;
  const auto& pool = scenario.train.trajectories;
  for (long i = 0; i < submits; ++i) {
    // Ratchet the quota: tighten to 2x the live footprint (pressure the
    // proactive GC can flush away), then to a single spare byte (a full
    // volume — submits must shed), then lift it — sustained pressure
    // with recovery windows, the shape of a volume filling up while an
    // operator frees space.
    if (i % 64 == 16) {
      (*wal)->set_disk_budget((*wal)->live_bytes() * 2);
    } else if (i % 64 == 32) {
      (*wal)->set_disk_budget((*wal)->live_bytes() + 1);
    } else if (i % 64 == 48) {
      (*wal)->set_disk_budget(0);
    }
    const Status status = scheduler.Submit(pool[i % pool.size()]);
    if (status.ok()) {
      ++acked;
    } else if (status.code() == StatusCode::kResourceExhausted) {
      ++shed;
    } else {
      std::fprintf(stderr,
                   "FAIL: submit %ld failed outside the ladder: %s\n", i,
                   status.ToString().c_str());
      return 1;
    }
    if (Progress() && i % 100 == 0) {
      std::fprintf(stderr, "[soak/ingest] %ld/%ld (%ld acked %ld shed)\n", i,
                   submits, acked, shed);
    }
  }

  // Pressure lifts; capture the pre-crash serving bytes.
  (*wal)->set_disk_budget(0);
  if (const Status status = scheduler.Flush(); !status.ok()) {
    std::fprintf(stderr, "final flush failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  TrajectoryDataset probes;
  for (size_t i = 0; i < 8 && i < scenario.test.trajectories.size(); ++i) {
    probes.trajectories.push_back(scenario.test.trajectories[i]);
  }
  const std::string before = Fingerprint(&system, probes);
  if (before.empty()) {
    std::fprintf(stderr, "FAIL: pre-crash imputation failed\n");
    return 1;
  }

  // Crash: drop the log object, rebuild everything from disk.
  (*wal).reset();
  Kamel recovered(IngestOptions());
  MaintenanceScheduler recovered_scheduler(&recovered, policy);
  IngestRecoveryReport report;
  auto reopened = OpenDurableIngestion(&recovered, &recovered_scheduler,
                                       wal_options, checkpoint, &report);
  if (!reopened.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  const std::string after = Fingerprint(&recovered, probes);
  std::printf(
      "resource soak (ingest): %ld acked, %ld shed of %ld submits | "
      "%d batches trained, %lld pressure flushes | recovery: snapshot=%s "
      "replayed=%zu retrained=%zu\n",
      acked, shed, submits, scheduler.batches_trained(),
      static_cast<long long>(scheduler.pressure_flushes()),
      report.snapshot_loaded ? "yes" : "no", report.submits_replayed,
      report.batches_retrained);
  if (after != before) {
    std::fprintf(stderr,
                 "FAIL: recovered imputations differ from pre-crash "
                 "imputations (acked-data loss)\n");
    return 1;
  }
  if (shed == 0) {
    std::fprintf(stderr,
                 "FAIL: the quota never refused a submit — the soak did "
                 "not exercise disk pressure\n");
    return 1;
  }
  return 0;
}

// ---- phase 2: serving under a memory ceiling and EIO bursts -----------

struct ServeCounters {
  std::atomic<long> served{0};
  std::atomic<long> completed{0};  // watchdog heartbeat
  std::atomic<long> unexpected{0};
};

int ServePhase(const SimScenario& scenario, long target) {
  const std::string snapshot_path = "/tmp/kamel_resource_soak_snapshot.bin";
  Kamel trained(ServeTrainOptions());
  if (const Status status = trained.Train(scenario.train); !status.ok()) {
    std::fprintf(stderr, "train failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (const Status status = trained.SaveToFile(snapshot_path);
      !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<Trajectory> inputs;
  for (const Trajectory& trajectory : scenario.test.trajectories) {
    inputs.push_back(Sparsify(trajectory, 400.0));
  }

  // Measure the full working set, then ceiling the soak cache at half of
  // it: every client pass must churn through eviction and demand reload.
  uint64_t working_set = 0;
  {
    KamelOptions probe_options = ServeTrainOptions();
    probe_options.max_resident_models = 64;
    Kamel probe(probe_options);
    if (!probe.LoadFromFile(snapshot_path).ok()) return 1;
    auto snapshot = probe.Snapshot();
    if (!snapshot.ok()) return 1;
    ServingEngine engine(*snapshot, {.num_threads = 1});
    for (const Trajectory& input : inputs) {
      if (!engine.Impute(input).ok()) return 1;
    }
    working_set = (*snapshot)->repository().cache()->resident_bytes();
  }
  if (working_set == 0) {
    std::fprintf(stderr, "FAIL: probe pass loaded no models\n");
    return 1;
  }

  KamelOptions serve_options = ServeTrainOptions();
  serve_options.max_resident_bytes = working_set / 2;
  serve_options.model_load_retries = 1;
  serve_options.model_load_backoff_ms = 0.01;
  serve_options.model_breaker_cooldown_s = 0.05;
  Kamel serving(serve_options);
  if (!serving.LoadFromFile(snapshot_path).ok()) return 1;
  auto snapshot = serving.Snapshot();
  if (!snapshot.ok()) return 1;
  ServingEngine engine(*snapshot, {.num_threads = 2});

  // Clean reference pass: byte-budget churn alone must not change output.
  std::vector<ImputedTrajectory> reference;
  for (const Trajectory& input : inputs) {
    auto result = engine.Impute(input);
    if (!result.ok()) {
      std::fprintf(stderr, "reference pass failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    reference.push_back(std::move(*result));
  }

  ServeCounters counters;
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog([&] {
    long last = -1;
    int stalled_polls = 0;
    while (!stop_watchdog.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      const long now = counters.completed.load();
      stalled_polls = (now == last) ? stalled_polls + 1 : 0;
      last = now;
      if (Progress()) {
        std::fprintf(stderr, "[soak/serve] %ld/%ld served\n",
                     counters.served.load(), target);
      }
      if (stalled_polls >= 120) {
        std::fprintf(stderr, "watchdog: no serving progress in 60s\n");
        std::_Exit(2);
      }
    }
  });

  // Chaos: errno-level EIO bursts on the model demand-load seam, with
  // clean gaps so breakers get to re-probe and close.
  std::atomic<bool> stop_chaos{false};
  std::thread chaos([&] {
    while (!stop_chaos.load()) {
      {
        ScopedIoFault burst("model.io.read", EIO, /*skip=*/0, /*count=*/-1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    FaultInjector::Instance().Reset();
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      size_t next = static_cast<size_t>(c) * 7;
      while (counters.served.load(std::memory_order_relaxed) < target) {
        auto result = engine.Impute(inputs[next++ % inputs.size()]);
        counters.completed.fetch_add(1, std::memory_order_relaxed);
        if (result.ok()) {
          // Degraded (ancestor/linear) output is fine mid-burst; the
          // ladder's whole point is that the request still completes.
          counters.served.fetch_add(1, std::memory_order_relaxed);
        } else {
          counters.unexpected.fetch_add(1);
          std::fprintf(stderr, "unexpected serving error: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  stop_chaos.store(true);
  chaos.join();

  // Faults gone: the engine must claw back to full-model SERVING and
  // reproduce the clean pass byte for byte.
  FaultInjector::Instance().Reset();
  bool recovered = false;
  bool identical = true;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    bool all_full = true;
    identical = true;
    for (size_t i = 0; i < inputs.size(); ++i) {
      auto result = engine.Impute(inputs[i]);
      counters.completed.fetch_add(1, std::memory_order_relaxed);
      if (!result.ok()) {
        all_full = false;
        break;
      }
      all_full = all_full && result->stats.full_model_segments ==
                                 result->stats.segments;
      identical = identical && Identical(*result, reference[i]);
    }
    recovered = all_full && engine.health() == HealthState::kServing;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  stop_watchdog.store(true);
  watchdog.join();

  const EngineStats stats = engine.stats();
  std::printf(
      "resource soak (serve): %ld served (%ld unexpected) | cache: "
      "%llu/%llu bytes resident | io_stalls %lld | health %s\n",
      counters.served.load(), counters.unexpected.load(),
      static_cast<unsigned long long>(stats.cache_resident_bytes),
      static_cast<unsigned long long>(working_set / 2),
      static_cast<long long>(stats.io_stalls), ToString(engine.health()));

  if (counters.unexpected.load() > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld requests failed outside the ladder's "
                 "advertised codes\n",
                 counters.unexpected.load());
    return 1;
  }
  if (!recovered) {
    std::fprintf(stderr,
                 "FAIL: engine did not return to full-model SERVING "
                 "(health=%s)\n",
                 ToString(engine.health()));
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: post-recovery output differs from the pre-chaos "
                 "pass\n");
    return 1;
  }
  return 0;
}

int Run() {
  const long target = TargetImputations();
  const SimScenario scenario = BuildScenario(MiniSpec());
  const long submits = std::max(64L, target / 8);

  if (const int rc = IngestPhase(scenario, submits); rc != 0) return rc;
  if (const int rc = ServePhase(scenario, target); rc != 0) return rc;
  std::printf("resource soak: PASS (zero acked loss, recovered to "
              "SERVING, byte-identical)\n");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
