// Microbenchmarks of the neural substrate across compute backends and
// weight formats, at the shapes KAMEL's bench models actually use.
//
// Three phases:
//   1. GEMM: scalar vs optimized backend at n = 64/128/256, GFLOP/s and
//      the optimized/scalar speedup (the headline the blocked/SIMD
//      kernels are gated on: >= 2x at n = 256).
//   2. LinearForward: the fused bias+activation path at the bench
//      model's fc1/fc2 shapes, per backend x weight format, plus the
//      encoded weight bytes (q8_0 must be <= ~30% of fp32).
//   3. End-to-end BertModel::ForwardInference per backend x format, and
//      one scalar fp32 MLM train step (training is pinned to scalar).
//
// Set KAMEL_BENCH_JSON to a path to persist the run as JSON (the
// committed BENCH_nn.json baseline). KAMEL_BENCH_SMOKE=1 shrinks the
// timing windows so CI can run the harness in seconds; smoke numbers are
// noisy and never committed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/binary_io.h"
#include "common/logging.h"
#include "common/rng.h"
#include "nn/backend/backend.h"
#include "nn/backend/quant.h"
#include "nn/mlm_trainer.h"
#include "nn/tensor.h"
#include "nn/transformer.h"

namespace kamel::bench {
namespace {

using nn::Activation;
using nn::Backend;
using nn::BertConfig;
using nn::BertModel;
using nn::OptimizedBackend;
using nn::QuantMatrix;
using nn::ScalarBackend;
using nn::Tensor;
using nn::WeightFormat;
using nn::WeightView;

bool Smoke() {
  const char* env = std::getenv("KAMEL_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Seconds per call: one untimed warmup, then doubling batches until a
/// batch fills the timing window (0.2 s, or 5 ms under smoke).
template <typename Fn>
double SecondsPerCall(const Fn& fn) {
  fn();
  const double window = Smoke() ? 0.005 : 0.2;
  int64_t iters = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (seconds >= window) return seconds / iters;
    iters *= 2;
  }
}

// ---- phase 1: GEMM -----------------------------------------------------

struct GemmRow {
  int64_t n = 0;
  double scalar_gflops = 0.0;
  double optimized_gflops = 0.0;
  double speedup = 0.0;
};

GemmRow MeasureGemm(int64_t n) {
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, &rng);
  const Tensor b = Tensor::Randn({n, n}, &rng);
  Tensor c({n, n});
  const double flops = 2.0 * n * n * n;
  GemmRow row;
  row.n = n;
  const double scalar_s = SecondsPerCall([&] {
    ScalarBackend::Instance().Gemm(false, false, n, n, n, 1.0f, a.data(), n,
                                   b.data(), n, 0.0f, c.data(), n);
  });
  const double optimized_s = SecondsPerCall([&] {
    OptimizedBackend::Instance().Gemm(false, false, n, n, n, 1.0f, a.data(),
                                      n, b.data(), n, 0.0f, c.data(), n);
  });
  row.scalar_gflops = flops / scalar_s / 1e9;
  row.optimized_gflops = flops / optimized_s / 1e9;
  row.speedup = scalar_s / optimized_s;
  return row;
}

// ---- phase 2: LinearForward across weight formats ----------------------

struct LinearRow {
  int64_t rows = 0, in = 0, out = 0;
  WeightFormat format = WeightFormat::kF32;
  double scalar_us = 0.0;
  double optimized_us = 0.0;
  int64_t weight_bytes = 0;
  double bytes_vs_f32 = 1.0;
};

LinearRow MeasureLinear(int64_t rows, int64_t in, int64_t out,
                        Activation act, WeightFormat format) {
  Rng rng(2);
  const Tensor x = Tensor::Randn({rows, in}, &rng);
  const Tensor w = Tensor::Randn({in, out}, &rng);
  const Tensor bias = Tensor::Randn({out}, &rng);
  Tensor y({rows, out});

  LinearRow row;
  row.rows = rows;
  row.in = in;
  row.out = out;
  row.format = format;

  QuantMatrix quant;
  WeightView view = WeightView::Dense(w.data());
  row.weight_bytes = in * out * static_cast<int64_t>(sizeof(float));
  if (format != WeightFormat::kF32) {
    auto quantized = QuantMatrix::Quantize(format, w.data(), in, out);
    KAMEL_CHECK(quantized.ok(), "quantize failed");
    quant = std::move(*quantized);
    view = WeightView::Quant(&quant);
    row.weight_bytes = quant.byte_size();
  }
  row.bytes_vs_f32 =
      static_cast<double>(row.weight_bytes) /
      static_cast<double>(in * out * static_cast<int64_t>(sizeof(float)));

  row.scalar_us = 1e6 * SecondsPerCall([&] {
    ScalarBackend::Instance().LinearForward(rows, in, out, x.data(), view,
                                            bias.data(), act, y.data());
  });
  row.optimized_us = 1e6 * SecondsPerCall([&] {
    OptimizedBackend::Instance().LinearForward(rows, in, out, x.data(), view,
                                               bias.data(), act, y.data());
  });
  return row;
}

// ---- phase 3: end-to-end model forward ---------------------------------

BertConfig BenchConfig(int64_t vocab) {
  BertConfig config;
  config.vocab_size = vocab;
  config.d_model = 48;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 192;
  config.max_seq_len = 48;
  config.dropout = 0.0;
  return config;
}

/// Serializes `model` at `format` and loads it back: the exact serving
/// artifact a quantized snapshot would demand-load.
std::unique_ptr<BertModel> Requantized(const BertModel& model,
                                       WeightFormat format) {
  BinaryWriter writer;
  const Status saved = model.Save(&writer, format);
  KAMEL_CHECK(saved.ok(), "quantized save failed");
  BinaryReader reader(writer.buffer());
  auto loaded = BertModel::Load(&reader);
  KAMEL_CHECK(loaded.ok(), "quantized load failed");
  return std::move(*loaded);
}

struct ForwardRow {
  const char* backend = "";
  WeightFormat format = WeightFormat::kF32;
  double ms = 0.0;
};

double MeasureForward(const BertModel& model, const Backend* backend,
                      int64_t seq) {
  std::vector<int32_t> ids(static_cast<size_t>(seq), 7);
  ids[10] = 4;  // a mask token
  const std::vector<float> mask(static_cast<size_t>(seq), 1.0f);
  // ForwardInference reads the process-wide backend, like serving does.
  const Status set = nn::SetActiveBackend(backend->name());
  KAMEL_CHECK(set.ok(), "SetActiveBackend failed");
  const double seconds = SecondsPerCall([&] {
    Tensor logits = model.ForwardInference(ids, mask, 1, seq);
    (void)logits;
  });
  return 1e3 * seconds;
}

double MeasureTrainStep() {
  const int64_t vocab = 300;
  BertModel model(BenchConfig(vocab), /*seed=*/3);
  Rng rng(5);
  std::vector<std::vector<int32_t>> corpus;
  for (int s = 0; s < 32; ++s) {
    std::vector<int32_t> seq;
    for (int t = 0; t < 24; ++t) {
      seq.push_back(static_cast<int32_t>(
          5 + rng.NextUint64(static_cast<uint64_t>(vocab - 5))));
    }
    corpus.push_back(std::move(seq));
  }
  nn::MlmTrainOptions options;
  options.batch_size = 16;
  nn::MlmTokenLayout layout{0, 4, 5};
  nn::AdamOptimizer optimizer(model.Params());
  return 1e3 * SecondsPerCall([&] {
    nn::MlmBatch batch =
        nn::BuildMlmBatch(corpus, layout, options, model.config().max_seq_len,
                          vocab, &rng);
    model.ZeroGrads();
    Tensor logits = model.Forward(batch.ids, batch.key_mask, batch.batch,
                                  batch.seq_len, /*train=*/true);
    const double loss = model.LossAndBackward(logits, batch.labels);
    optimizer.Step(1e-3);
    (void)loss;
  });
}

int Run() {
  // Phase 1: GEMM.
  Table gemm_table("GEMM: scalar vs optimized backend (square n)",
                   {"n", "scalar_gflops", "optimized_gflops", "speedup"});
  std::vector<GemmRow> gemm_rows;
  for (const int64_t n : {64, 128, 256}) {
    gemm_rows.push_back(MeasureGemm(n));
    const GemmRow& r = gemm_rows.back();
    gemm_table.AddRow({std::to_string(r.n), Table::Num(r.scalar_gflops, 2),
                       Table::Num(r.optimized_gflops, 2),
                       Table::Num(r.speedup, 2)});
  }
  Emit(gemm_table, "micro_nn_gemm");

  // Phase 2: LinearForward at the bench model's fc1 (48 -> 192, GELU)
  // and fc2 (192 -> 48) shapes, one statement (48 tokens) per call.
  Table linear_table(
      "LinearForward: backend x weight format (48-token statement)",
      {"in", "out", "format", "scalar_us", "optimized_us", "weight_bytes",
       "bytes_vs_f32"});
  std::vector<LinearRow> linear_rows;
  const WeightFormat kFormats[] = {WeightFormat::kF32, WeightFormat::kQ8_0,
                                   WeightFormat::kQ4_0};
  for (const WeightFormat format : kFormats) {
    linear_rows.push_back(MeasureLinear(48, 48, 192, Activation::kGelu,
                                        format));
    linear_rows.push_back(MeasureLinear(48, 192, 48, Activation::kNone,
                                        format));
  }
  for (const LinearRow& r : linear_rows) {
    linear_table.AddRow({std::to_string(r.in), std::to_string(r.out),
                         nn::ToString(r.format), Table::Num(r.scalar_us, 2),
                         Table::Num(r.optimized_us, 2),
                         std::to_string(r.weight_bytes),
                         Table::Num(r.bytes_vs_f32, 3)});
  }
  Emit(linear_table, "micro_nn_linear");

  // Phase 3: whole-model inference per backend x format, plus the scalar
  // fp32 training step (training never uses the optimized backend).
  const int64_t vocab = 1000;
  const int64_t seq = 32;
  BertModel model(BenchConfig(vocab), /*seed=*/3);
  const std::unique_ptr<BertModel> q8 =
      Requantized(model, WeightFormat::kQ8_0);
  const std::unique_ptr<BertModel> q4 =
      Requantized(model, WeightFormat::kQ4_0);
  const struct {
    const BertModel* model;
    WeightFormat format;
  } kVariants[] = {{&model, WeightFormat::kF32},
                   {q8.get(), WeightFormat::kQ8_0},
                   {q4.get(), WeightFormat::kQ4_0}};

  Table forward_table("BertModel::ForwardInference (batch 1, seq 32)",
                      {"backend", "format", "ms_per_forward"});
  std::vector<ForwardRow> forward_rows;
  for (const Backend* backend : nn::AllBackends()) {
    for (const auto& variant : kVariants) {
      ForwardRow row;
      row.backend = backend->name();
      row.format = variant.format;
      row.ms = MeasureForward(*variant.model, backend, seq);
      forward_rows.push_back(row);
      forward_table.AddRow({row.backend, nn::ToString(row.format),
                            Table::Num(row.ms, 3)});
    }
  }
  KAMEL_CHECK(nn::SetActiveBackend("scalar").ok(), "restore backend");
  Emit(forward_table, "micro_nn_forward");

  const double train_step_ms = MeasureTrainStep();
  std::printf("MLM train step (scalar fp32, batch 16): %.2f ms\n\n",
              train_step_ms);

  // JSON baseline (BENCH_nn.json when KAMEL_BENCH_JSON is set).
  std::vector<Json> gemm_json;
  for (const GemmRow& r : gemm_rows) {
    gemm_json.push_back(Json::Object({
        {"n", Json::Int(r.n)},
        {"scalar_gflops", Json::Num(r.scalar_gflops, 2)},
        {"optimized_gflops", Json::Num(r.optimized_gflops, 2)},
        {"speedup", Json::Num(r.speedup, 2)},
    }));
  }
  std::vector<Json> linear_json;
  for (const LinearRow& r : linear_rows) {
    linear_json.push_back(Json::Object({
        {"rows", Json::Int(r.rows)},
        {"in", Json::Int(r.in)},
        {"out", Json::Int(r.out)},
        {"format", Json::Str(nn::ToString(r.format))},
        {"scalar_us", Json::Num(r.scalar_us, 2)},
        {"optimized_us", Json::Num(r.optimized_us, 2)},
        {"weight_bytes", Json::Int(r.weight_bytes)},
        {"bytes_vs_f32", Json::Num(r.bytes_vs_f32, 3)},
    }));
  }
  std::vector<Json> forward_json;
  for (const ForwardRow& r : forward_rows) {
    forward_json.push_back(Json::Object({
        {"backend", Json::Str(r.backend)},
        {"format", Json::Str(nn::ToString(r.format))},
        {"ms_per_forward", Json::Num(r.ms, 3)},
    }));
  }
  EmitBenchJson(Json::Object({
      {"bench", Json::Str("micro_nn")},
      {"host_threads", Json::Int(std::thread::hardware_concurrency())},
      {"smoke", Json::Bool(Smoke())},
      {"gemm", Json::Array(std::move(gemm_json))},
      {"linear_forward", Json::Array(std::move(linear_json))},
      {"bert_forward", Json::Array(std::move(forward_json))},
      {"mlm_train_step_ms", Json::Num(train_step_ms, 2)},
  }));
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
