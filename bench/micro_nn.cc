// Microbenchmarks of the neural substrate: SGEMM kernels, transformer
// forward/backward, and one full MLM training step, at the shapes KAMEL's
// bench models actually use.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/blas.h"
#include "nn/mlm_trainer.h"
#include "nn/tensor.h"
#include "nn/transformer.h"

namespace kamel::nn {
namespace {

void BM_SgemmNN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    Sgemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
          c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SgemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmTransposed(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    Sgemm(true, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
          c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SgemmTransposed)->Arg(64)->Arg(128);

BertConfig BenchConfig(int64_t vocab) {
  BertConfig config;
  config.vocab_size = vocab;
  config.d_model = 48;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 192;
  config.max_seq_len = 48;
  config.dropout = 0.0;
  return config;
}

void BM_BertForward(benchmark::State& state) {
  const int64_t vocab = state.range(0);
  BertModel model(BenchConfig(vocab), /*seed=*/3);
  const int64_t seq = 32;
  std::vector<int32_t> ids(static_cast<size_t>(seq), 7);
  ids[10] = 4;  // a mask token
  const std::vector<float> mask(static_cast<size_t>(seq), 1.0f);
  for (auto _ : state) {
    Tensor logits = model.Forward(ids, mask, 1, seq, /*train=*/false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_BertForward)->Arg(300)->Arg(1000)->Arg(2000);

void BM_MlmTrainStep(benchmark::State& state) {
  const int64_t vocab = state.range(0);
  BertModel model(BenchConfig(vocab), /*seed=*/3);
  Rng rng(5);
  std::vector<std::vector<int32_t>> corpus;
  for (int s = 0; s < 32; ++s) {
    std::vector<int32_t> seq;
    for (int t = 0; t < 24; ++t) {
      seq.push_back(static_cast<int32_t>(
          5 + rng.NextUint64(static_cast<uint64_t>(vocab - 5))));
    }
    corpus.push_back(std::move(seq));
  }
  MlmTrainOptions options;
  options.batch_size = 16;
  MlmTokenLayout layout{0, 4, 5};
  AdamOptimizer optimizer(model.Params());
  for (auto _ : state) {
    MlmBatch batch = BuildMlmBatch(corpus, layout, options,
                                   model.config().max_seq_len, vocab, &rng);
    model.ZeroGrads();
    Tensor logits =
        model.Forward(batch.ids, batch.key_mask, batch.batch, batch.seq_len,
                      /*train=*/true);
    const double loss = model.LossAndBackward(logits, batch.labels);
    optimizer.Step(1e-3);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_MlmTrainStep)->Arg(300)->Arg(1000);

}  // namespace
}  // namespace kamel::nn

BENCHMARK_MAIN();
