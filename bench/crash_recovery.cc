// Crash-point harness for durable ingestion (the recovery half of the
// fault-injection story). One clean ingest->train->serve workload runs
// first through OpenDurableIngestion, counting how often every WAL and
// snapshot crashpoint is reached and fingerprinting the imputations it
// serves. Then the same workload reruns once per (crashpoint,
// occurrence) pair with a fault armed to fail exactly that occurrence.
// The fault is treated as a kill -9: every object is destroyed at the
// point of the error with whatever half-written state the fault left on
// disk, the log is reopened through recovery, and the workload resumes
// from the first trajectory recovery did not bring back. The harness
// asserts, for every single crashpoint:
//
//   * recovery itself succeeds -- a crash never wedges the log;
//   * no acknowledged Submit is lost, and nothing unacknowledged
//     beyond the single in-flight record appears (exit 1);
//   * after resuming, imputation output is byte-for-byte identical to
//     the never-crashed reference run (exit 1).
//
// KAMEL_CRASH_TRIPS bounds the workload (default 16, minimum 8 so at
// least one batch trains) so CI can run a smaller smoke. Exit 0 pass,
// 1 durability violation, 2 harness/setup error.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "core/maintenance.h"
#include "io/trajectory_csv.h"
#include "sim/datasets.h"

namespace kamel::bench {
namespace {

namespace fs = std::filesystem;

// Every failpoint on the durable-ingestion write path. Each gets a kill
// simulated at every occurrence the reference run observed.
constexpr const char* kCrashpoints[] = {
    "wal.append",     "wal.append.torn", "wal.fsync",   "wal.rotate",
    "wal.checkpoint", "snapshot.write",  "store.append"};

long WorkloadTrips() {
  if (const char* env = std::getenv("KAMEL_CRASH_TRIPS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return parsed;
  }
  return 16;
}

KamelOptions CrashTrainOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 40;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.train.steps = 30;
  options.bert.train.batch_size = 4;
  return options;
}

MaintenanceOptions CrashPolicy() {
  MaintenanceOptions policy;
  policy.min_batch_trajectories = 8;
  policy.min_batch_points = 100000;
  return policy;
}

// Small segments so rotation (and therefore the wal.rotate crashpoint)
// actually happens inside a 16-trip workload.
WalOptions CrashWalOptions(const std::string& dir) {
  WalOptions options;
  options.dir = dir + "/wal";
  options.segment_bytes = 2048;
  return options;
}

std::string FreshDir(int case_index) {
  const std::string dir =
      "/tmp/kamel_crash_recovery/" + std::to_string(case_index);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir;
}

/// Byte-level fingerprint of what the system serves for `probes`.
Result<std::string> Fingerprint(Kamel* system,
                                const TrajectoryDataset& probes) {
  KAMEL_ASSIGN_OR_RETURN(auto imputed, system->ImputeBatch(probes));
  TrajectoryDataset out;
  for (const ImputedTrajectory& one : imputed) {
    out.trajectories.push_back(one.trajectory);
  }
  return io::WriteCsvString(out);
}

struct Reference {
  std::string fingerprint;
  size_t store_size = 0;
  // (crashpoint, times the clean workload reached it).
  std::vector<std::pair<std::string, long>> occurrences;
};

int RunReference(const SimScenario& scenario, long trips,
                 const TrajectoryDataset& probes, Reference* out) {
  const std::string dir = FreshDir(0);
  Kamel system(CrashTrainOptions());
  MaintenanceScheduler scheduler(&system, CrashPolicy());
  auto wal = OpenDurableIngestion(&system, &scheduler, CrashWalOptions(dir),
                                  dir + "/checkpoint.bin");
  if (!wal.ok()) {
    std::fprintf(stderr, "reference open failed: %s\n",
                 wal.status().ToString().c_str());
    return 2;
  }
  // Count crashpoint hits over the workload only; the fresh-directory
  // open above happens identically in every crash case before arming.
  // Hit() skips its counter entirely while nothing is armed, so arm a
  // sentinel that can never fire (count=0) to switch counting on.
  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Arm("crash.harness.sentinel", /*skip=*/0,
                                /*count=*/0);
  for (long i = 0; i < trips; ++i) {
    if (const Status status =
            scheduler.Submit(scenario.train.trajectories[i]);
        !status.ok()) {
      std::fprintf(stderr, "reference submit %ld failed: %s\n", i,
                   status.ToString().c_str());
      return 2;
    }
  }
  for (const char* point : kCrashpoints) {
    out->occurrences.emplace_back(point,
                                  FaultInjector::Instance().HitCount(point));
  }
  FaultInjector::Instance().Disarm("crash.harness.sentinel");
  // The crash cases locate "first trajectory recovery did not restore"
  // as ingested + pending; that only works if every submitted trip is
  // usable (tokenizes to >= 2 points). Verify the assumption up front.
  if (system.ingested().size() + scheduler.pending_trajectories() !=
      static_cast<size_t>(trips)) {
    std::fprintf(stderr,
                 "harness assumption broken: %zu ingested + %zu pending "
                 "!= %ld submitted (unusable trip in the workload?)\n",
                 system.ingested().size(), scheduler.pending_trajectories(),
                 trips);
    return 2;
  }
  auto fingerprint = Fingerprint(&system, probes);
  if (!fingerprint.ok()) {
    std::fprintf(stderr, "reference imputation failed: %s\n",
                 fingerprint.status().ToString().c_str());
    return 2;
  }
  out->fingerprint = *std::move(fingerprint);
  out->store_size = system.store().size();
  return 0;
}

int RunCrashCase(const SimScenario& scenario, long trips,
                 const TrajectoryDataset& probes, const Reference& reference,
                 const std::string& point, long occurrence, int case_index,
                 bool* crashed_out) {
  const std::string dir = FreshDir(case_index);
  const std::string checkpoint = dir + "/checkpoint.bin";
  const WalOptions wal_options = CrashWalOptions(dir);

  size_t acked = 0;
  bool crashed = false;
  std::string crash_error;
  {
    Kamel system(CrashTrainOptions());
    MaintenanceScheduler scheduler(&system, CrashPolicy());
    auto wal =
        OpenDurableIngestion(&system, &scheduler, wal_options, checkpoint);
    if (!wal.ok()) {
      std::fprintf(stderr, "%s#%ld: pre-fault open failed: %s\n",
                   point.c_str(), occurrence, wal.status().ToString().c_str());
      return 2;
    }
    ScopedFault fault(point, /*skip=*/static_cast<int>(occurrence),
                      /*count=*/1);
    for (long i = 0; i < trips; ++i) {
      const Status status =
          scheduler.Submit(scenario.train.trajectories[i]);
      if (!status.ok()) {
        crashed = true;
        crash_error = status.ToString();
        break;
      }
      ++acked;
    }
    // Scope exit is the kill: the log handle, scheduler, and system die
    // here holding whatever state the fault interrupted mid-write.
  }
  *crashed_out = crashed;

  Kamel system(CrashTrainOptions());
  MaintenanceScheduler scheduler(&system, CrashPolicy());
  IngestRecoveryReport report;
  auto wal = OpenDurableIngestion(&system, &scheduler, wal_options,
                                  checkpoint, &report);
  if (!wal.ok()) {
    std::fprintf(stderr,
                 "FAIL %s#%ld: recovery refused to open after the crash "
                 "(%s); crash error was: %s\n",
                 point.c_str(), occurrence, wal.status().ToString().c_str(),
                 crashed ? crash_error.c_str() : "none");
    return 1;
  }
  const size_t durable =
      system.ingested().size() + scheduler.pending_trajectories();
  if (durable < acked) {
    std::fprintf(stderr,
                 "FAIL %s#%ld: lost %zu acknowledged submit(s) "
                 "(acked %zu, durable %zu)\n",
                 point.c_str(), occurrence, acked - durable, acked, durable);
    return 1;
  }
  // The submit the fault interrupted may legitimately have reached the
  // log (e.g. fsync failed after the bytes landed); anything beyond
  // that one in-flight record is fabricated data.
  if (durable > acked + 1) {
    std::fprintf(stderr,
                 "FAIL %s#%ld: recovery restored %zu trips but only %zu "
                 "were even attempted\n",
                 point.c_str(), occurrence, durable, acked + 1);
    return 1;
  }

  // Resume the workload exactly where the durable state ends.
  for (long i = static_cast<long>(durable); i < trips; ++i) {
    if (const Status status =
            scheduler.Submit(scenario.train.trajectories[i]);
        !status.ok()) {
      std::fprintf(stderr, "FAIL %s#%ld: post-recovery submit %ld failed: %s\n",
                   point.c_str(), occurrence, i, status.ToString().c_str());
      return 1;
    }
  }
  if (system.store().size() != reference.store_size) {
    std::fprintf(stderr,
                 "FAIL %s#%ld: store holds %zu trajectories after "
                 "recovery, clean run held %zu\n",
                 point.c_str(), occurrence, system.store().size(),
                 reference.store_size);
    return 1;
  }
  auto fingerprint = Fingerprint(&system, probes);
  if (!fingerprint.ok()) {
    std::fprintf(stderr, "FAIL %s#%ld: post-recovery imputation failed: %s\n",
                 point.c_str(), occurrence,
                 fingerprint.status().ToString().c_str());
    return 1;
  }
  if (*fingerprint != reference.fingerprint) {
    std::fprintf(stderr,
                 "FAIL %s#%ld: post-recovery imputation diverged from "
                 "the never-crashed run (crash error: %s)\n",
                 point.c_str(), occurrence,
                 crashed ? crash_error.c_str() : "none");
    return 1;
  }
  return 0;
}

int Run() {
  const SimScenario scenario = BuildScenario(MiniSpec(51));
  long trips = WorkloadTrips();
  if (trips > static_cast<long>(scenario.train.trajectories.size())) {
    trips = static_cast<long>(scenario.train.trajectories.size());
  }
  if (trips < 8) trips = 8;  // one full batch, or nothing ever trains

  TrajectoryDataset probes;
  for (size_t i = 0; i < 4 && i < scenario.test.trajectories.size(); ++i) {
    probes.trajectories.push_back(scenario.test.trajectories[i]);
  }

  FaultInjector::Instance().Reset();
  Reference reference;
  if (const int rc = RunReference(scenario, trips, probes, &reference);
      rc != 0) {
    return rc;
  }

  long total_cases = 0;
  for (const auto& [point, hits] : reference.occurrences) {
    total_cases += hits;
  }
  std::printf("crash recovery: %ld trips, %ld crashpoint occurrences\n",
              trips, total_cases);

  int case_index = 1;
  long crashed_cases = 0;
  long clean_cases = 0;
  for (const auto& [point, hits] : reference.occurrences) {
    if (hits == 0) {
      std::printf("  %-16s never reached by this workload -- skipped\n",
                  point.c_str());
      continue;
    }
    for (long k = 0; k < hits; ++k) {
      bool crashed = false;
      if (const int rc = RunCrashCase(scenario, trips, probes, reference,
                                      point, k, case_index++, &crashed);
          rc != 0) {
        return rc;
      }
      (crashed ? crashed_cases : clean_cases) += 1;
    }
    std::printf("  %-16s %ld occurrence(s) killed and recovered\n",
                point.c_str(), hits);
  }

  std::printf(
      "crash recovery: PASS (%ld cases: %ld crashed+recovered, %ld "
      "completed without surfacing an error)\n",
      crashed_cases + clean_cases, crashed_cases, clean_cases);
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
