// Figure 12-V: impact of training data density — the dense Jakarta-style
// feed (1 s) resampled to 15, 30 and 60 s before training.
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

int Run() {
  const ScenarioSpec spec = JakartaLikeSpec();
  const double delta = DefaultDelta(spec.name);

  Table sweep_table("Figure 12-V(a-c): training density vs sparseness",
                    {"sampling", "sparseness_m", "recall", "precision",
                     "failure_rate"});
  Table delta_table("Figure 12-V(d-e): training density vs threshold",
                    {"sampling", "delta_m", "recall", "precision"});

  for (double interval : {1.0, 15.0, 30.0, 60.0}) {
    BenchVariant variant;
    if (interval > 1.0) variant.resample_interval_s = interval;
    auto systems =
        PrepareBenchSystems(spec, VariantBenchOptions(), variant);
    if (!systems.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   systems.status().ToString().c_str());
      return 1;
    }
    const TrajectoryDataset test = LimitedTest(systems->sim.test);
    Evaluator evaluator(systems->sim.projection.get());
    const std::string label = Table::Num(interval, 0) + "s";

    for (double sparseness : SparsenessSweep()) {
      auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                     sparseness);
      if (!run.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      ScoreConfig score;
      score.delta_m = delta;
      const EvalResult result = evaluator.Score(*run, score);
      sweep_table.AddRow({label, Table::Num(sparseness, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision),
                          Table::Num(result.failure_rate)});
    }

    auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                   /*sparse=*/1000.0);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    for (double d : {10.0, 25.0, 50.0, 75.0, 100.0}) {
      ScoreConfig score;
      score.delta_m = d;
      const EvalResult result = evaluator.Score(*run, score);
      delta_table.AddRow({label, Table::Num(d, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision)});
    }
  }
  Emit(sweep_table, "fig12_density_sparseness");
  Emit(delta_table, "fig12_density_threshold");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
