// Serving-engine throughput: ImputeBatch over one immutable KamelSnapshot
// at 1/2/4/8 pool threads. Prints trajectories/second and speedup versus
// the single-threaded engine, and fails (exit 1) if any thread count
// produces output that is not byte-identical to the 1-thread reference —
// the determinism bar the serving split guarantees.
//
// Speedup tracks the machine's core count: on a 1-core container every
// row measures pool overhead (~1.0x); on an 8-core host the 8-thread row
// is the scaling headline.
//
// A second phase measures request latency: 1/4/8 client threads issue
// single-trajectory Impute calls (synchronous, no pool) against one
// shared engine and report p50/p99 per-request latency plus aggregate
// imputations/second. Set KAMEL_BENCH_JSON to a file path to persist
// both phases as JSON (the committed BENCH_serving.json baseline).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::bench {
namespace {

KamelOptions ThroughputOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 100;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 300;
  options.bert.train.batch_size = 16;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.seed = 42;
  return options;
}

// Batch size (trajectories) per timed run; $KAMEL_BENCH_BATCH overrides.
size_t BatchSize() {
  if (const char* env = std::getenv("KAMEL_BENCH_BATCH")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 64;
}

bool Identical(const ImputedTrajectory& a, const ImputedTrajectory& b) {
  if (a.trajectory.points.size() != b.trajectory.points.size()) return false;
  for (size_t i = 0; i < a.trajectory.points.size(); ++i) {
    if (a.trajectory.points[i].pos.lat != b.trajectory.points[i].pos.lat ||
        a.trajectory.points[i].pos.lng != b.trajectory.points[i].pos.lng ||
        a.trajectory.points[i].time != b.trajectory.points[i].time) {
      return false;
    }
  }
  return a.stats.bert_calls == b.stats.bert_calls &&
         a.stats.failed_segments == b.stats.failed_segments;
}

/// Nearest-rank percentile of an already sorted sample (q in [0, 1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct ThroughputRow {
  int threads = 0;
  double seconds = 0.0;
  double traj_per_sec = 0.0;
  double speedup = 0.0;
};

struct LatencyRow {
  int clients = 0;
  size_t requests = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double imputations_per_sec = 0.0;
};

/// `clients` threads issue synchronous single-trajectory Impute calls,
/// splitting `requests_per_client * clients` requests round-robin over
/// the batch. Per-request wall times feed the percentile summary.
Result<LatencyRow> MeasureLatency(const ServingEngine& engine,
                                  const TrajectoryDataset& batch,
                                  int clients, size_t requests_per_client) {
  const size_t total = requests_per_client * clients;
  std::vector<double> latencies_ms(total, 0.0);
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      size_t i;
      while ((i = next.fetch_add(1)) < total && !failed.load()) {
        const Trajectory& sparse =
            batch.trajectories[i % batch.trajectories.size()];
        const auto request_start = std::chrono::steady_clock::now();
        if (!engine.Impute(sparse).ok()) failed.store(true);
        latencies_ms[i] = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() -
                              request_start)
                              .count();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (failed.load()) return Status::Internal("Impute failed during latency run");

  std::sort(latencies_ms.begin(), latencies_ms.end());
  LatencyRow row;
  row.clients = clients;
  row.requests = total;
  row.p50_ms = Percentile(latencies_ms, 0.50);
  row.p99_ms = Percentile(latencies_ms, 0.99);
  row.imputations_per_sec = total / wall;
  return row;
}

/// Persists both phases to $KAMEL_BENCH_JSON (the committed
/// BENCH_serving.json perf baseline) when that variable is set.
void EmitJson(const std::vector<ThroughputRow>& throughput,
              const std::vector<LatencyRow>& latency, size_t batch_size) {
  std::vector<Json> throughput_json;
  for (const ThroughputRow& r : throughput) {
    throughput_json.push_back(Json::Object({
        {"pool_threads", Json::Int(r.threads)},
        {"seconds", Json::Num(r.seconds, 4)},
        {"traj_per_sec", Json::Num(r.traj_per_sec, 2)},
        {"speedup", Json::Num(r.speedup, 2)},
    }));
  }
  std::vector<Json> latency_json;
  for (const LatencyRow& r : latency) {
    latency_json.push_back(Json::Object({
        {"client_threads", Json::Int(r.clients)},
        {"requests", Json::Int(static_cast<int64_t>(r.requests))},
        {"p50_ms", Json::Num(r.p50_ms, 3)},
        {"p99_ms", Json::Num(r.p99_ms, 3)},
        {"imputations_per_sec", Json::Num(r.imputations_per_sec, 2)},
    }));
  }
  // The scaling rows only mean something next to the core count they ran
  // on: speedup ~1.0 at every thread count on host_threads=1 is the
  // hardware ceiling, not a serialization bug in the engine.
  EmitBenchJson(Json::Object({
      {"bench", Json::Str("micro_throughput")},
      {"host_threads", Json::Int(std::thread::hardware_concurrency())},
      {"batch_trajectories", Json::Int(static_cast<int64_t>(batch_size))},
      {"batch_throughput", Json::Array(std::move(throughput_json))},
      {"request_latency", Json::Array(std::move(latency_json))},
  }));
}

int Run() {
  const SimScenario scenario = BuildScenario(MiniSpec());
  Kamel system(ThroughputOptions());
  if (const Status trained = system.Train(scenario.train); !trained.ok()) {
    std::fprintf(stderr, "train failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  auto snapshot = system.Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }

  // Cycle the sparsified test set up to the batch size.
  TrajectoryDataset batch;
  const size_t kBatch = BatchSize();
  for (size_t i = 0; i < kBatch; ++i) {
    batch.trajectories.push_back(Sparsify(
        scenario.test.trajectories[i % scenario.test.trajectories.size()],
        400.0));
  }

  Table table("Serving throughput: ImputeBatch vs pool threads",
              {"threads", "seconds", "traj_per_sec", "speedup", "identical"});
  std::vector<ThroughputRow> throughput_rows;
  std::vector<ImputedTrajectory> reference;
  double base_seconds = 0.0;
  bool all_identical = true;
  for (const int threads : {1, 2, 4, 8}) {
    ServingEngine engine(*snapshot, {.num_threads = threads});
    // Untimed warmup so demand-loaded models and allocator state don't
    // bias the 1-thread baseline.
    if (threads == 1 && !engine.ImputeBatch(batch).ok()) return 1;

    const auto start = std::chrono::steady_clock::now();
    auto results = engine.ImputeBatch(batch);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!results.ok()) {
      std::fprintf(stderr, "ImputeBatch(%d threads) failed: %s\n", threads,
                   results.status().ToString().c_str());
      return 1;
    }

    bool identical = true;
    if (threads == 1) {
      reference = std::move(*results);
      base_seconds = seconds;
    } else {
      identical = results->size() == reference.size();
      for (size_t i = 0; identical && i < reference.size(); ++i) {
        identical = Identical((*results)[i], reference[i]);
      }
      all_identical = all_identical && identical;
    }
    table.AddRow({std::to_string(threads), Table::Num(seconds, 3),
                  Table::Num(batch.trajectories.size() / seconds, 1),
                  Table::Num(base_seconds / seconds, 2),
                  identical ? "yes" : "NO"});
    throughput_rows.push_back({threads, seconds,
                               batch.trajectories.size() / seconds,
                               base_seconds / seconds});
  }
  Emit(table, "micro_throughput");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: output differs across thread counts (determinism "
                 "violation)\n");
    return 1;
  }

  // Phase 2: request latency. Impute() is synchronous on the calling
  // thread, so client threads ARE the concurrency axis; one shared
  // engine serves them all. $KAMEL_BENCH_LATENCY_REQS scales the sample.
  size_t requests_per_client = 32;
  if (const char* env = std::getenv("KAMEL_BENCH_LATENCY_REQS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) requests_per_client = static_cast<size_t>(parsed);
  }
  Table latency_table(
      "Serving latency: synchronous Impute vs client threads",
      {"clients", "requests", "p50_ms", "p99_ms", "imputations_per_sec"});
  std::vector<LatencyRow> latency_rows;
  ServingEngine latency_engine(*snapshot, {.num_threads = 1});
  for (const int clients : {1, 4, 8}) {
    auto row = MeasureLatency(latency_engine, batch, clients,
                              requests_per_client);
    if (!row.ok()) {
      std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
      return 1;
    }
    latency_table.AddRow({std::to_string(row->clients),
                          std::to_string(row->requests),
                          Table::Num(row->p50_ms, 3),
                          Table::Num(row->p99_ms, 3),
                          Table::Num(row->imputations_per_sec, 1)});
    latency_rows.push_back(*row);
  }
  Emit(latency_table, "micro_latency");
  EmitJson(throughput_rows, latency_rows, batch.trajectories.size());
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
