// Serving-engine throughput: ImputeBatch over one immutable KamelSnapshot
// at 1/2/4/8 pool threads. Prints trajectories/second and speedup versus
// the single-threaded engine, and fails (exit 1) if any thread count
// produces output that is not byte-identical to the 1-thread reference —
// the determinism bar the serving split guarantees.
//
// Speedup tracks the machine's core count: on a 1-core container every
// row measures pool overhead (~1.0x); on an 8-core host the 8-thread row
// is the scaling headline.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::bench {
namespace {

KamelOptions ThroughputOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 100;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 300;
  options.bert.train.batch_size = 16;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.seed = 42;
  return options;
}

// Batch size (trajectories) per timed run; $KAMEL_BENCH_BATCH overrides.
size_t BatchSize() {
  if (const char* env = std::getenv("KAMEL_BENCH_BATCH")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 64;
}

bool Identical(const ImputedTrajectory& a, const ImputedTrajectory& b) {
  if (a.trajectory.points.size() != b.trajectory.points.size()) return false;
  for (size_t i = 0; i < a.trajectory.points.size(); ++i) {
    if (a.trajectory.points[i].pos.lat != b.trajectory.points[i].pos.lat ||
        a.trajectory.points[i].pos.lng != b.trajectory.points[i].pos.lng ||
        a.trajectory.points[i].time != b.trajectory.points[i].time) {
      return false;
    }
  }
  return a.stats.bert_calls == b.stats.bert_calls &&
         a.stats.failed_segments == b.stats.failed_segments;
}

int Run() {
  const SimScenario scenario = BuildScenario(MiniSpec());
  Kamel system(ThroughputOptions());
  if (const Status trained = system.Train(scenario.train); !trained.ok()) {
    std::fprintf(stderr, "train failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  auto snapshot = system.Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }

  // Cycle the sparsified test set up to the batch size.
  TrajectoryDataset batch;
  const size_t kBatch = BatchSize();
  for (size_t i = 0; i < kBatch; ++i) {
    batch.trajectories.push_back(Sparsify(
        scenario.test.trajectories[i % scenario.test.trajectories.size()],
        400.0));
  }

  Table table("Serving throughput: ImputeBatch vs pool threads",
              {"threads", "seconds", "traj_per_sec", "speedup", "identical"});
  std::vector<ImputedTrajectory> reference;
  double base_seconds = 0.0;
  bool all_identical = true;
  for (const int threads : {1, 2, 4, 8}) {
    ServingEngine engine(*snapshot, {.num_threads = threads});
    // Untimed warmup so demand-loaded models and allocator state don't
    // bias the 1-thread baseline.
    if (threads == 1 && !engine.ImputeBatch(batch).ok()) return 1;

    const auto start = std::chrono::steady_clock::now();
    auto results = engine.ImputeBatch(batch);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!results.ok()) {
      std::fprintf(stderr, "ImputeBatch(%d threads) failed: %s\n", threads,
                   results.status().ToString().c_str());
      return 1;
    }

    bool identical = true;
    if (threads == 1) {
      reference = std::move(*results);
      base_seconds = seconds;
    } else {
      identical = results->size() == reference.size();
      for (size_t i = 0; identical && i < reference.size(); ++i) {
        identical = Identical((*results)[i], reference[i]);
      }
      all_identical = all_identical && identical;
    }
    table.AddRow({std::to_string(threads), Table::Num(seconds, 3),
                  Table::Num(batch.trajectories.size() / seconds, 1),
                  Table::Num(base_seconds / seconds, 2),
                  identical ? "yes" : "NO"});
  }
  Emit(table, "micro_throughput");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: output differs across thread counts (determinism "
                 "violation)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
