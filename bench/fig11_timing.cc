// Figure 11: training time (a) and average per-trajectory imputation time
// (b) for both datasets. Training numbers come from the systems' own
// accounting; a cached KAMEL load reports the time recorded at train time.
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

int Run() {
  Table train_table("Figure 11a: training time",
                    {"dataset", "method", "train_seconds"});
  Table impute_table(
      "Figure 11b: imputation time",
      {"dataset", "method", "avg_seconds_per_trajectory", "bert_calls"});

  for (const ScenarioSpec& spec : {PortoLikeSpec(), JakartaLikeSpec()}) {
    auto systems = PrepareBenchSystems(spec, BenchOptionsFor(spec));
    if (!systems.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   systems.status().ToString().c_str());
      return 1;
    }
    const TrajectoryDataset test = LimitedTest(systems->sim.test);
    Evaluator evaluator(systems->sim.projection.get());

    for (ImputationMethod* method : systems->AllMethods()) {
      train_table.AddRow(
          {spec.name, method->name(), Table::Num(method->train_seconds())});
      auto run = evaluator.RunMethod(method, test, /*sparse=*/1000.0);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method->name().c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      const EvalResult result = evaluator.Score(*run, ScoreConfig{});
      impute_table.AddRow(
          {spec.name, method->name(),
           Table::Num(result.avg_impute_seconds_per_trajectory, 4),
           std::to_string(result.bert_calls)});
    }
  }
  Emit(train_table, "fig11a_training_time");
  Emit(impute_table, "fig11b_imputation_time");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
