// Microbenchmarks of the imputation pipeline pieces that run per segment:
// spatial-constraint filtering, cycle detection, and iterative-vs-beam
// imputation against a deterministic candidate source (no model noise, so
// the numbers isolate the algorithms of Section 6).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/imputer.h"
#include "core/spatial_constraints.h"
#include "grid/hex_grid.h"

namespace kamel {
namespace {

// Candidate source that walks straight toward the destination: proposes
// the neighbors of the last left-context cell, ranked by how much closer
// they get to the first right-context cell.
class StraightLineSource final : public CandidateSource {
 public:
  explicit StraightLineSource(const GridSystem* grid) : grid_(grid) {}

  std::vector<Candidate> PredictMasked(const std::vector<CellId>& left,
                                       const std::vector<CellId>& right,
                                       int top_k) const override {
    std::vector<Candidate> out;
    const Vec2 target = grid_->Centroid(right.front());
    std::vector<CellId> options = grid_->EdgeNeighbors(left.back());
    std::sort(options.begin(), options.end(),
              [&](CellId a, CellId b) {
                return Distance(grid_->Centroid(a), target) <
                       Distance(grid_->Centroid(b), target);
              });
    double prob = 0.5;
    for (CellId cell : options) {
      if (static_cast<int>(out.size()) >= top_k) break;
      out.push_back({cell, prob});
      prob *= 0.5;
    }
    return out;
  }

 private:
  const GridSystem* grid_;
};

KamelOptions MicroOptions() {
  KamelOptions options;
  options.max_speed_mps = 30.0;
  options.beam_size = 5;
  options.top_k = 6;
  return options;
}

SegmentContext MakeContext(const HexGrid& grid, double gap_m) {
  SegmentContext context;
  context.s = {grid.CellOf({0.0, 0.0}), 0.0, {0.0, 0.0}, 0.0};
  context.d = {grid.CellOf({gap_m, 0.0}), gap_m / 10.0, {gap_m, 0.0}, 0.0};
  return context;
}

void BM_IterativeImpute(benchmark::State& state) {
  HexGrid grid(75.0);
  const KamelOptions options = MicroOptions();
  SpatialConstraints constraints(&grid, options);
  constraints.set_max_speed_mps(30.0);
  IterativeBertImputer imputer(&grid, &constraints, options);
  StraightLineSource source(&grid);
  const SegmentContext context =
      MakeContext(grid, static_cast<double>(state.range(0)));
  for (auto _ : state) {
    ImputedSegment segment = imputer.Impute(&source, context);
    benchmark::DoNotOptimize(segment.cells.data());
  }
}
BENCHMARK(BM_IterativeImpute)->Arg(500)->Arg(1000)->Arg(2000);

void BM_BeamImpute(benchmark::State& state) {
  HexGrid grid(75.0);
  const KamelOptions options = MicroOptions();
  SpatialConstraints constraints(&grid, options);
  constraints.set_max_speed_mps(30.0);
  BeamSearchImputer imputer(&grid, &constraints, options);
  StraightLineSource source(&grid);
  const SegmentContext context =
      MakeContext(grid, static_cast<double>(state.range(0)));
  for (auto _ : state) {
    ImputedSegment segment = imputer.Impute(&source, context);
    benchmark::DoNotOptimize(segment.cells.data());
  }
}
BENCHMARK(BM_BeamImpute)->Arg(500)->Arg(1000);

void BM_ConstraintFilter(benchmark::State& state) {
  HexGrid grid(75.0);
  const KamelOptions options = MicroOptions();
  SpatialConstraints constraints(&grid, options);
  constraints.set_max_speed_mps(30.0);
  const SegmentContext context = MakeContext(grid, 1000.0);
  std::vector<Candidate> candidates;
  for (CellId cell : grid.Disk(context.s.cell, 3)) {
    candidates.push_back({cell, 0.1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(constraints.Filter(context, candidates));
  }
}
BENCHMARK(BM_ConstraintFilter);

void BM_CycleDetection(benchmark::State& state) {
  std::vector<CellId> cells;
  for (int i = 0; i < 40; ++i) cells.push_back(static_cast<CellId>(i % 17));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SpatialConstraints::DetectCycleAround(cells, cells.size() / 2, 6));
  }
}
BENCHMARK(BM_CycleDetection);

}  // namespace
}  // namespace kamel

BENCHMARK_MAIN();
