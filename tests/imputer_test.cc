// Multipoint Imputation tests (Section 6) against deterministic fake
// candidate sources — no trained model noise.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/imputer.h"
#include "grid/hex_grid.h"

namespace kamel {
namespace {

// Proposes neighbors of the last left-context cell ranked by proximity to
// the first right-context cell — a perfect straight driver.
class StraightSource final : public CandidateSource {
 public:
  explicit StraightSource(const GridSystem* grid) : grid_(grid) {}

  std::vector<Candidate> PredictMasked(const std::vector<CellId>& left,
                                       const std::vector<CellId>& right,
                                       int top_k) const override {
    ++calls;
    const Vec2 target = grid_->Centroid(right.front());
    std::vector<CellId> options = grid_->EdgeNeighbors(left.back());
    std::sort(options.begin(), options.end(), [&](CellId a, CellId b) {
      return Distance(grid_->Centroid(a), target) <
             Distance(grid_->Centroid(b), target);
    });
    std::vector<Candidate> out;
    double prob = 0.6;
    for (CellId cell : options) {
      if (static_cast<int>(out.size()) >= top_k) break;
      out.push_back({cell, prob});
      prob *= 0.5;
    }
    return out;
  }

  mutable int calls = 0;  // PredictMasked is const (see CandidateSource)

 private:
  const GridSystem* grid_;
};

// Always proposes the same single cell — forces trivial cycles.
class StuckSource final : public CandidateSource {
 public:
  explicit StuckSource(CellId cell) : cell_(cell) {}
  std::vector<Candidate> PredictMasked(const std::vector<CellId>&,
                                       const std::vector<CellId>&,
                                       int) const override {
    return {{cell_, 0.9}};
  }

 private:
  CellId cell_;
};

// Returns nothing — a model with no usable candidates.
class EmptySource final : public CandidateSource {
 public:
  std::vector<Candidate> PredictMasked(const std::vector<CellId>&,
                                       const std::vector<CellId>&,
                                       int) const override {
    return {};
  }
};

class ImputerTest : public testing::Test {
 protected:
  ImputerTest() : grid_(75.0) {
    options_.max_gap_m = 100.0;
    options_.top_k = 6;
    options_.beam_size = 4;
    options_.max_bert_calls_per_segment = 200;
    options_.max_speed_mps = 30.0;
    constraints_ = std::make_unique<SpatialConstraints>(&grid_, options_);
    constraints_->set_max_speed_mps(30.0);
  }

  SegmentContext Segment(double gap_m) const {
    SegmentContext context;
    context.s = {grid_.CellOf({0.0, 0.0}), 0.0, {0.0, 0.0}, 0.0};
    context.d = {grid_.CellOf({gap_m, 0.0}), gap_m / 12.0,
                 {gap_m, 0.0}, 0.0};
    return context;
  }

  // Max centroid distance between consecutive cells of a segment.
  double MaxHop(const std::vector<CellId>& cells) const {
    double max_hop = 0.0;
    for (size_t i = 1; i < cells.size(); ++i) {
      max_hop = std::max(max_hop, Distance(grid_.Centroid(cells[i - 1]),
                                           grid_.Centroid(cells[i])));
    }
    return max_hop;
  }

  HexGrid grid_;
  KamelOptions options_;
  std::unique_ptr<SpatialConstraints> constraints_;
};

TEST_F(ImputerTest, GapThresholdIsAtLeastOneCell) {
  // 100 m max_gap with 75 m hexes (130 m spacing) must clamp to 1 cell.
  IterativeBertImputer imputer(&grid_, constraints_.get(), options_);
  EXPECT_EQ(imputer.max_gap_cells(), 1);
  KamelOptions wide = options_;
  wide.max_gap_m = 500.0;
  IterativeBertImputer wide_imputer(&grid_, constraints_.get(), wide);
  EXPECT_EQ(wide_imputer.max_gap_cells(), 3);  // floor(500 / 129.9)
}

TEST_F(ImputerTest, FindGapsIdentifiesSparsePairs) {
  IterativeBertImputer imputer(&grid_, constraints_.get(), options_);
  const CellId a = grid_.CellOf({0, 0});
  const CellId b = grid_.CellOf({1000, 0});
  const std::vector<CellId> near = grid_.EdgeNeighbors(a);
  EXPECT_EQ(imputer.FindFirstGap({a, near[0]}), -1);
  EXPECT_EQ(imputer.FindFirstGap({a, b}), 0);
  EXPECT_EQ(imputer.FindGaps({a, b, grid_.CellOf({2000, 0})}).size(), 2u);
}

TEST_F(ImputerTest, IterativeFillsStraightGap) {
  IterativeBertImputer imputer(&grid_, constraints_.get(), options_);
  StraightSource source(&grid_);
  const SegmentContext context = Segment(1000.0);
  const ImputedSegment segment = imputer.Impute(&source, context);
  ASSERT_FALSE(segment.failed);
  EXPECT_EQ(segment.cells.front(), context.s.cell);
  EXPECT_EQ(segment.cells.back(), context.d.cell);
  EXPECT_GT(segment.cells.size(), 5u);  // ~8 cells over 1 km
  // No remaining gap anywhere.
  EXPECT_EQ(imputer.FindFirstGap(segment.cells), -1);
  EXPECT_LE(MaxHop(segment.cells), grid_.NeighborSpacingMeters() + 1e-6);
  EXPECT_EQ(segment.bert_calls, source.calls);
  EXPECT_GT(segment.probability, 0.0);
}

TEST_F(ImputerTest, IterativeFailsOnEmptyCandidates) {
  IterativeBertImputer imputer(&grid_, constraints_.get(), options_);
  EmptySource source;
  const ImputedSegment segment = imputer.Impute(&source, Segment(1000.0));
  EXPECT_TRUE(segment.failed);
  EXPECT_EQ(segment.cells.size(), 2u);
}

TEST_F(ImputerTest, IterativeRejectsStuckCycle) {
  IterativeBertImputer imputer(&grid_, constraints_.get(), options_);
  // The stuck cell is adjacent to S so it passes constraints once, but a
  // second insertion would be a trivial cycle.
  StuckSource source(grid_.EdgeNeighbors(grid_.CellOf({0, 0}))[0]);
  const ImputedSegment segment = imputer.Impute(&source, Segment(1000.0));
  EXPECT_TRUE(segment.failed);
}

TEST_F(ImputerTest, IterativeRespectsCallBudget) {
  KamelOptions tight = options_;
  tight.max_bert_calls_per_segment = 2;
  IterativeBertImputer imputer(&grid_, constraints_.get(), tight);
  StraightSource source(&grid_);
  const ImputedSegment segment = imputer.Impute(&source, Segment(3000.0));
  EXPECT_TRUE(segment.failed);
  EXPECT_LE(segment.bert_calls, 2);
}

TEST_F(ImputerTest, BeamFillsStraightGap) {
  BeamSearchImputer imputer(&grid_, constraints_.get(), options_);
  StraightSource source(&grid_);
  const SegmentContext context = Segment(1000.0);
  const ImputedSegment segment = imputer.Impute(&source, context);
  ASSERT_FALSE(segment.failed);
  EXPECT_EQ(segment.cells.front(), context.s.cell);
  EXPECT_EQ(segment.cells.back(), context.d.cell);
  EXPECT_EQ(imputer.FindFirstGap(segment.cells), -1);
  EXPECT_GT(segment.normalized_score, 0.0);
}

TEST_F(ImputerTest, BeamNoGapReturnsImmediately) {
  BeamSearchImputer imputer(&grid_, constraints_.get(), options_);
  EmptySource source;
  SegmentContext context;
  const CellId s = grid_.CellOf({0, 0});
  context.s = {s, 0.0, {0, 0}, 0.0};
  const CellId d = grid_.EdgeNeighbors(s)[0];
  context.d = {d, 10.0, grid_.Centroid(d), 0.0};
  const ImputedSegment segment = imputer.Impute(&source, context);
  EXPECT_FALSE(segment.failed);
  EXPECT_EQ(segment.cells.size(), 2u);
  EXPECT_EQ(segment.bert_calls, 0);
}

TEST_F(ImputerTest, BeamFailsWithoutCandidates) {
  BeamSearchImputer imputer(&grid_, constraints_.get(), options_);
  EmptySource source;
  const ImputedSegment segment = imputer.Impute(&source, Segment(1000.0));
  EXPECT_TRUE(segment.failed);
}

TEST_F(ImputerTest, BeamLengthNormalization) {
  BeamSearchImputer imputer(&grid_, constraints_.get(), options_);
  StraightSource source(&grid_);
  const ImputedSegment segment = imputer.Impute(&source, Segment(800.0));
  ASSERT_FALSE(segment.failed);
  const double imputed_tokens =
      static_cast<double>(segment.cells.size() - 2);
  EXPECT_NEAR(segment.normalized_score,
              segment.probability * imputed_tokens, 1e-9);
}

TEST_F(ImputerTest, SinglePointInsertsExactlyOne) {
  SinglePointImputer imputer(&grid_, constraints_.get(), options_);
  StraightSource source(&grid_);
  const ImputedSegment segment = imputer.Impute(&source, Segment(1000.0));
  EXPECT_EQ(segment.cells.size(), 3u);
  EXPECT_EQ(segment.bert_calls, 1);
  // One token cannot close a 1 km gap: counted as failure (Section 8.7).
  EXPECT_TRUE(segment.failed);
}

TEST_F(ImputerTest, SinglePointSucceedsOnTinyGap) {
  KamelOptions wide = options_;
  wide.max_gap_m = 300.0;  // 2-cell threshold
  SinglePointImputer imputer(&grid_, constraints_.get(), wide);
  StraightSource source(&grid_);
  // Gap of 3 cells: one midpoint insertion brings every hop within 2.
  SegmentContext context;
  context.s = {grid_.CellOf({0.0, 0.0}), 0.0, {0.0, 0.0}, 0.0};
  context.d = {grid_.CellOf({390.0, 0.0}), 30.0, {390.0, 0.0}, 0.0};
  const ImputedSegment segment = imputer.Impute(&source, context);
  EXPECT_FALSE(segment.failed);
  EXPECT_EQ(segment.cells.size(), 3u);
}

// Two roads from S to D; the greedy-preferred one is a trap (its final
// link toward D is never proposed), the slightly-less-probable one goes
// through. This is the paper's Figure 6-vs-7 argument in miniature: the
// topmost token per call is not the best sequence.
class ForkTrapSource final : public CandidateSource {
 public:
  ForkTrapSource(const GridSystem* grid, CellId destination)
      : grid_(grid), destination_(destination) {}

  std::vector<Candidate> PredictMasked(const std::vector<CellId>& left,
                                       const std::vector<CellId>& right,
                                       int top_k) const override {
    (void)right;
    const Vec2 here = grid_->Centroid(left.back());
    const Vec2 target = grid_->Centroid(destination_);
    std::vector<Candidate> out;
    for (CellId nb : grid_->EdgeNeighbors(left.back())) {
      const Vec2 c = grid_->Centroid(nb);
      if (c.x <= here.x + 1.0) continue;  // only eastward progress
      // Exactly one row on each side: the hex row just south of the axis
      // (the trap) and the row just north of it (goes through).
      const bool on_trap_road = c.y < -10.0 && c.y > -150.0;
      const bool on_good_road = c.y > 10.0 && c.y < 150.0;
      // The trap road is preferred by one-step probability but is a dead
      // end: it stops existing half-way to D, and mid-way axis cells are
      // never proposed, so a walk committed to it cannot recover.
      if (on_trap_road && c.x < 350.0) out.push_back({nb, 0.5});
      if (on_good_road) out.push_back({nb, 0.35});
      (void)target;
    }
    std::sort(out.begin(), out.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.prob > b.prob;
              });
    if (static_cast<int>(out.size()) > top_k) {
      out.resize(static_cast<size_t>(top_k));
    }
    return out;
  }

 private:
  const GridSystem* grid_;
  CellId destination_;
};

TEST_F(ImputerTest, BeamEscapesGreedyTrap) {
  // Hex rows: y = 0 (S/D axis), y ~ +112.5 (good road), y ~ -112.5
  // (trap road).
  const CellId s = grid_.CellOf({0.0, 0.0});
  const CellId d = grid_.CellOf({5.0 * std::sqrt(3.0) * 75.0, 0.0});
  SegmentContext context;
  context.s = {s, 0.0, grid_.Centroid(s), 0.0};
  context.d = {d, 60.0, grid_.Centroid(d), 0.0};

  KamelOptions options = options_;
  options.beam_size = 4;
  options.max_bert_calls_per_segment = 200;
  ForkTrapSource source(&grid_, d);

  IterativeBertImputer greedy(&grid_, constraints_.get(), options);
  const ImputedSegment greedy_result = greedy.Impute(&source, context);

  BeamSearchImputer beam(&grid_, constraints_.get(), options);
  const ImputedSegment beam_result = beam.Impute(&source, context);

  // Greedy follows the 0.5-probability trap road and cannot close the
  // gap; beam keeps the 0.35 road in its beam and completes.
  EXPECT_TRUE(greedy_result.failed);
  ASSERT_FALSE(beam_result.failed);
  EXPECT_EQ(beam_result.cells.front(), s);
  EXPECT_EQ(beam_result.cells.back(), d);
  // The completed path runs along the good (north) road.
  bool used_good_road = false;
  for (CellId cell : beam_result.cells) {
    if (grid_.Centroid(cell).y > 10.0) used_good_road = true;
  }
  EXPECT_TRUE(used_good_road);
}

class BothImputersTest : public testing::TestWithParam<ImputeMethod> {};

TEST_P(BothImputersTest, PropertyOutputEndpointsAndDensity) {
  // Property shared by both strategies: endpoints preserved and output
  // dense, across gap lengths and directions.
  HexGrid grid(75.0);
  KamelOptions options;
  options.max_speed_mps = 30.0;
  options.beam_size = 4;
  options.max_bert_calls_per_segment = 400;
  options.method = GetParam();
  SpatialConstraints constraints(&grid, options);
  constraints.set_max_speed_mps(30.0);
  std::unique_ptr<Imputer> imputer;
  if (GetParam() == ImputeMethod::kIterativeBert) {
    imputer = std::make_unique<IterativeBertImputer>(&grid, &constraints,
                                                     options);
  } else {
    imputer =
        std::make_unique<BeamSearchImputer>(&grid, &constraints, options);
  }
  StraightSource source(&grid);
  for (double angle : {0.0, 0.7, 2.1, -1.3}) {
    for (double gap : {400.0, 900.0, 1600.0}) {
      SegmentContext context;
      context.s = {grid.CellOf({0.0, 0.0}), 0.0, {0.0, 0.0}, 0.0};
      const Vec2 d_pos{gap * std::cos(angle), gap * std::sin(angle)};
      context.d = {grid.CellOf(d_pos), gap / 12.0, d_pos, 0.0};
      const ImputedSegment segment = imputer->Impute(&source, context);
      ASSERT_FALSE(segment.failed) << "angle " << angle << " gap " << gap;
      EXPECT_EQ(segment.cells.front(), context.s.cell);
      EXPECT_EQ(segment.cells.back(), context.d.cell);
      EXPECT_EQ(imputer->FindFirstGap(segment.cells), -1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, BothImputersTest,
                         testing::Values(ImputeMethod::kIterativeBert,
                                         ImputeMethod::kBidirectionalBeam));

}  // namespace
}  // namespace kamel
