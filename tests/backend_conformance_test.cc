// Per-op conformance harness for the pluggable NN compute backends (the
// ggml test-backend-ops idea): every op of every registered backend, at
// deliberately awkward shapes, is gated against the scalar fp32
// reference by normalized mean squared error. f32 backends may differ
// only by FMA/reassociation rounding (NMSE <= 1e-10); the quantized
// weight formats carry their codec error budgets (q8_0 <= 1e-3,
// q4_0 <= 2e-2).
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/backend/backend.h"
#include "nn/backend/quant.h"
#include "nn/tensor.h"

namespace kamel::nn {
namespace {

// NMSE tolerances per comparison class.
constexpr double kF32Tol = 1e-10;
constexpr double kQ8Tol = 1e-3;
constexpr double kQ4Tol = 2e-2;

double Nmse(const float* ref, const float* got, int64_t n) {
  double err = 0.0, norm = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(ref[i]) - got[i];
    err += d * d;
    norm += static_cast<double>(ref[i]) * ref[i];
  }
  return err / (norm + 1e-30);
}

// Odd sizes on purpose: m and k avoid the 4-row register tile, n = 33
// forces one full 32-column panel plus a 1-column tail.
constexpr int64_t kM = 5, kN = 33, kK = 17;

class BackendConformanceTest : public ::testing::TestWithParam<const Backend*> {
 protected:
  const Backend& backend() const { return *GetParam(); }
  const Backend& reference() const { return ScalarBackend::Instance(); }
};

std::string BackendName(const ::testing::TestParamInfo<const Backend*>& info) {
  return info.param->name();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformanceTest,
                         ::testing::ValuesIn(AllBackends()), BackendName);

TEST_P(BackendConformanceTest, GemmAllTransposesAndBetas) {
  Rng rng(11);
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      // Stored shapes honoring the transpose flags.
      const int64_t a_rows = trans_a ? kK : kM, a_cols = trans_a ? kM : kK;
      const int64_t b_rows = trans_b ? kN : kK, b_cols = trans_b ? kK : kN;
      const Tensor a = Tensor::Randn({a_rows, a_cols}, &rng);
      const Tensor b = Tensor::Randn({b_rows, b_cols}, &rng);
      const Tensor c0 = Tensor::Randn({kM, kN}, &rng);
      for (const float beta : {0.0f, 1.0f, 0.7f}) {
        const float alpha = 1.3f;
        Tensor want = c0, got = c0;
        reference().Gemm(trans_a, trans_b, kM, kN, kK, alpha, a.data(),
                         a_cols, b.data(), b_cols, beta, want.data(), kN);
        backend().Gemm(trans_a, trans_b, kM, kN, kK, alpha, a.data(), a_cols,
                       b.data(), b_cols, beta, got.data(), kN);
        EXPECT_LE(Nmse(want.data(), got.data(), kM * kN), kF32Tol)
            << "trans_a=" << trans_a << " trans_b=" << trans_b
            << " beta=" << beta << " backend=" << backend().name();
      }
    }
  }
}

TEST_P(BackendConformanceTest, Axpy) {
  Rng rng(12);
  const Tensor x = Tensor::Randn({101}, &rng);
  Tensor want = Tensor::Randn({101}, &rng);
  Tensor got = want;
  reference().Axpy(101, 0.37f, x.data(), want.data());
  backend().Axpy(101, 0.37f, x.data(), got.data());
  EXPECT_LE(Nmse(want.data(), got.data(), 101), kF32Tol);
}

TEST_P(BackendConformanceTest, Gelu) {
  Rng rng(13);
  const Tensor x = Tensor::Randn({257}, &rng);
  Tensor want({257}), got({257});
  reference().Gelu(x.data(), want.data(), 257);
  backend().Gelu(x.data(), got.data(), 257);
  EXPECT_LE(Nmse(want.data(), got.data(), 257), kF32Tol);
}

TEST_P(BackendConformanceTest, SoftmaxRows) {
  Rng rng(14);
  const Tensor x = Tensor::Randn({7, 19}, &rng);
  Tensor want({7, 19}), got({7, 19});
  reference().SoftmaxRows(7, 19, x.data(), want.data());
  backend().SoftmaxRows(7, 19, x.data(), got.data());
  EXPECT_LE(Nmse(want.data(), got.data(), 7 * 19), kF32Tol);
}

TEST_P(BackendConformanceTest, LayerNormRows) {
  Rng rng(15);
  const Tensor x = Tensor::Randn({9, 48}, &rng);
  const Tensor gamma = Tensor::Randn({48}, &rng);
  const Tensor beta = Tensor::Randn({48}, &rng);
  Tensor want({9, 48}), got({9, 48});
  reference().LayerNormRows(9, 48, x.data(), gamma.data(), beta.data(),
                            1e-5f, want.data());
  backend().LayerNormRows(9, 48, x.data(), gamma.data(), beta.data(), 1e-5f,
                          got.data());
  EXPECT_LE(Nmse(want.data(), got.data(), 9 * 48), kF32Tol);
}

// LinearForward across every weight format, with and without bias/GELU.
// The reference is always the scalar backend on the dense fp32 weight;
// quantized runs are budgeted by their codec's tolerance.
TEST_P(BackendConformanceTest, LinearForwardAllFormats) {
  Rng rng(16);
  const int64_t rows = kM, in = kK, out = kN;
  const Tensor x = Tensor::Randn({rows, in}, &rng);
  const Tensor w = Tensor::Randn({in, out}, &rng);
  const Tensor bias = Tensor::Randn({out}, &rng);

  const struct {
    WeightFormat format;
    double tol;
  } kCases[] = {{WeightFormat::kF32, kF32Tol},
                {WeightFormat::kQ8_0, kQ8Tol},
                {WeightFormat::kQ4_0, kQ4Tol}};
  for (const auto& c : kCases) {
    QuantMatrix quant;
    WeightView view = WeightView::Dense(w.data());
    if (c.format != WeightFormat::kF32) {
      auto q = QuantMatrix::Quantize(c.format, w.data(), in, out);
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      quant = std::move(*q);
      view = WeightView::Quant(&quant);
    }
    for (const bool with_bias : {false, true}) {
      for (const Activation act : {Activation::kNone, Activation::kGelu}) {
        Tensor want({rows, out}), got({rows, out});
        reference().LinearForward(rows, in, out, x.data(),
                                  WeightView::Dense(w.data()),
                                  with_bias ? bias.data() : nullptr, act,
                                  want.data());
        backend().LinearForward(rows, in, out, x.data(), view,
                                with_bias ? bias.data() : nullptr, act,
                                got.data());
        EXPECT_LE(Nmse(want.data(), got.data(), rows * out), c.tol)
            << "format=" << ToString(c.format) << " bias=" << with_bias
            << " gelu=" << (act == Activation::kGelu)
            << " backend=" << backend().name();
      }
    }
  }
}

TEST_P(BackendConformanceTest, AttentionContextWithPadding) {
  Rng rng(17);
  const int64_t batch = 2, seq = 7, d_model = 48, heads = 4;
  const Tensor qkv = Tensor::Randn({batch * seq, 3 * d_model}, &rng);
  std::vector<float> key_mask(static_cast<size_t>(batch * seq), 1.0f);
  // Pad the tail of the second sequence.
  key_mask[static_cast<size_t>(batch * seq) - 1] = 0.0f;
  key_mask[static_cast<size_t>(batch * seq) - 2] = 0.0f;

  Tensor want({batch * seq, d_model}), got({batch * seq, d_model});
  reference().AttentionContext(qkv.data(), key_mask.data(), batch, seq,
                               d_model, heads, nullptr, want.data());
  backend().AttentionContext(qkv.data(), key_mask.data(), batch, seq,
                             d_model, heads, nullptr, got.data());
  EXPECT_LE(Nmse(want.data(), got.data(), batch * seq * d_model), kF32Tol);
}

// Backends are stateless: a repeated call must be byte-identical, and
// concurrent callers sharing one backend + one quantized weight must each
// get exactly the single-threaded answer (the serving determinism
// contract; the TSan leg runs this via the concurrency label).
TEST_P(BackendConformanceTest, DeterministicAndConcurrentlyReusable) {
  Rng rng(18);
  const int64_t rows = 24, in = 48, out = 48;
  const Tensor x = Tensor::Randn({rows, in}, &rng);
  const Tensor w = Tensor::Randn({in, out}, &rng);
  auto q = QuantMatrix::Quantize(WeightFormat::kQ8_0, w.data(), in, out);
  ASSERT_TRUE(q.ok());
  const QuantMatrix quant = std::move(*q);
  const WeightView view = WeightView::Quant(&quant);

  Tensor expected({rows, out});
  backend().LinearForward(rows, in, out, x.data(), view, nullptr,
                          Activation::kGelu, expected.data());
  Tensor again({rows, out});
  backend().LinearForward(rows, in, out, x.data(), view, nullptr,
                          Activation::kGelu, again.data());
  ASSERT_EQ(0, std::memcmp(expected.data(), again.data(),
                           static_cast<size_t>(rows * out) * sizeof(float)));

  constexpr int kThreads = 4;
  std::vector<Tensor> outs;
  for (int t = 0; t < kThreads; ++t) outs.emplace_back(Tensor({rows, out}));
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int iter = 0; iter < 8; ++iter) {
        backend().LinearForward(rows, in, out, x.data(), view, nullptr,
                                Activation::kGelu, outs[t].data());
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(0,
              std::memcmp(expected.data(), outs[t].data(),
                          static_cast<size_t>(rows * out) * sizeof(float)))
        << "thread " << t;
  }
}

// Registry sanity: scalar is first (the reference), lookups work, and
// the active-backend override round-trips.
TEST(BackendRegistryTest, LookupAndActivation) {
  const std::vector<const Backend*> all = AllBackends();
  ASSERT_GE(all.size(), 2u);
  EXPECT_STREQ("scalar", all[0]->name());
  EXPECT_EQ(&ScalarBackend::Instance(), FindBackend("scalar"));
  EXPECT_EQ(&OptimizedBackend::Instance(), FindBackend("optimized"));
  EXPECT_EQ(nullptr, FindBackend("tpu"));

  const Backend* before = ActiveBackend();
  ASSERT_TRUE(SetActiveBackend("optimized").ok());
  EXPECT_STREQ("optimized", ActiveBackend()->name());
  EXPECT_FALSE(SetActiveBackend("tpu").ok());
  EXPECT_STREQ("optimized", ActiveBackend()->name());  // unchanged on error
  ASSERT_TRUE(SetActiveBackend(before->name()).ok());
}

}  // namespace
}  // namespace kamel::nn
