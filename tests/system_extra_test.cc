// Second-wave system tests: batch mode, streaming with interleaved
// vehicles, map-matching internals, TrImpute indexing, and detokenizer
// integration details.
#include <gtest/gtest.h>

#include "baselines/map_matching.h"
#include "common/table.h"
#include "baselines/trimpute.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "geo/polyline.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

TEST(PolylineEdgeCaseTest, SinglePointResample) {
  const std::vector<Vec2> one = {{5, 5}};
  const auto out = polyline::ResampleEvery(one, 10.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Vec2{5, 5}));
}

TEST(TableFileTest, WriteCsvCreatesReadableFile) {
  Table table("t", {"a", "b"});
  table.AddRow({"1", "2"});
  const std::string path = testing::TempDir() + "/kamel_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_GT(reader->remaining(), 5u);
}

class SystemExtraTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec(41)));
    KamelOptions options;
    options.pyramid_height = 0;
    options.pyramid_levels = 1;
    options.model_token_threshold = 100;
    options.bert.encoder.d_model = 32;
    options.bert.encoder.num_heads = 4;
    options.bert.encoder.num_layers = 2;
    options.bert.encoder.ffn_dim = 128;
    options.bert.encoder.max_seq_len = 32;
    options.bert.train.steps = 500;
    options.beam_size = 4;
    system_ = new Kamel(options);
    ASSERT_TRUE(system_->Train(scenario_->train).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    delete scenario_;
  }

  static SimScenario* scenario_;
  static Kamel* system_;
};

SimScenario* SystemExtraTest::scenario_ = nullptr;
Kamel* SystemExtraTest::system_ = nullptr;

TEST_F(SystemExtraTest, ImputeBatchProcessesWholeDataset) {
  TrajectoryDataset batch;
  for (size_t i = 0; i < 4; ++i) {
    batch.trajectories.push_back(
        Sparsify(scenario_->test.trajectories[i], 400.0));
  }
  auto results = system_->ImputeBatch(batch);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*results)[i].trajectory.id, batch.trajectories[i].id);
    EXPECT_GE((*results)[i].trajectory.points.size(),
              batch.trajectories[i].points.size());
  }
}

TEST_F(SystemExtraTest, StreamingInterleavesVehicles) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot, {.num_threads = 2});
  std::vector<int64_t> finished;
  FunctionSink sink(
      [&finished](int64_t id, ImputedTrajectory) { finished.push_back(id); });
  StreamingSession session(&engine, &sink);
  const Trajectory a = Sparsify(scenario_->test.trajectories[0], 400.0);
  const Trajectory b = Sparsify(scenario_->test.trajectories[1], 400.0);
  const size_t n = std::min(a.points.size(), b.points.size());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(session.Push(1, a.points[i]).ok());
    ASSERT_TRUE(session.Push(2, b.points[i]).ok());
  }
  EXPECT_EQ(session.open_trajectories(), 2u);
  ASSERT_TRUE(session.EndTrajectory(1).ok());
  ASSERT_TRUE(session.Flush().ok());
  session.Drain();
  // Both vehicles were imputed; completion order across pool threads is
  // unspecified, so compare as a set.
  ASSERT_EQ(finished.size(), 2u);
  std::sort(finished.begin(), finished.end());
  EXPECT_EQ(finished[0], 1);
  EXPECT_EQ(finished[1], 2);
}

TEST_F(SystemExtraTest, NoModelSegmentsAreCountedSeparately) {
  // A trajectory far outside the trained world: no model covers it.
  Trajectory remote;
  const LocalProjection& proj = system_->projection();
  remote.points = {{proj.Unproject({50000.0, 50000.0}), 0.0},
                   {proj.Unproject({51000.0, 50000.0}), 100.0}};
  auto result = system_->Impute(remote);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.segments, 1);
  EXPECT_EQ(result->stats.no_model_segments, 1);
  EXPECT_EQ(result->stats.failed_segments, 1);
  // Straight-line fallback still densifies the output.
  EXPECT_GT(result->trajectory.points.size(), 2u);
}

TEST(MapMatchingInternalsTest, SameEdgeRouteIsDirect) {
  // A single straight road; two readings projected onto the same edge.
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1000, 0});
  net.AddRoad(0, 1, 13.9);
  LocalProjection proj({45.0, -93.0});
  MapMatchingOptions options;
  options.max_gap_m = 100.0;
  MapMatching matcher(&net, &proj, options);
  Trajectory sparse;
  sparse.points = {{proj.Unproject({100.0, 5.0}), 0.0},
                   {proj.Unproject({900.0, -5.0}), 80.0}};
  auto result = matcher.Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.failed_segments, 0);
  // Interior points lie on the road (y ~ 0), not on the reading offsets.
  ASSERT_GT(result->trajectory.points.size(), 4u);
  for (size_t i = 1; i + 1 < result->trajectory.points.size(); ++i) {
    const Vec2 p = proj.Project(result->trajectory.points[i].pos);
    EXPECT_NEAR(p.y, 0.0, 1.0);
    EXPECT_GT(p.x, 50.0);
    EXPECT_LT(p.x, 950.0);
  }
}

TEST(MapMatchingInternalsTest, PicksRoadOverNoise) {
  // Two parallel roads 300 m apart; readings near the north one.
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({2000, 0});
  net.AddNode({0, 300});
  net.AddNode({2000, 300});
  net.AddRoad(0, 1, 13.9);
  net.AddRoad(2, 3, 13.9);
  net.AddRoad(0, 2, 13.9);
  LocalProjection proj({45.0, -93.0});
  MapMatching matcher(&net, &proj);
  Trajectory sparse;
  sparse.points = {{proj.Unproject({100.0, 290.0}), 0.0},
                   {proj.Unproject({1900.0, 310.0}), 150.0}};
  auto result = matcher.Impute(sparse);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i + 1 < result->trajectory.points.size(); ++i) {
    const Vec2 p = proj.Project(result->trajectory.points[i].pos);
    EXPECT_NEAR(p.y, 300.0, 30.0) << "left the north road at " << i;
  }
}

TEST(TrImputeIndexTest, FindsNeighborsAcrossIndexCells) {
  TrImputeOptions options;
  options.index_cell_m = 60.0;
  options.search_radius_m = 120.0;
  options.min_support = 1;
  TrImpute trimpute(options);
  // Points straddling index-cell borders near (0,0).
  TrajectoryDataset data;
  Trajectory t;
  const LocalProjection proj({45.0, -93.0});
  for (double x = -150.0; x <= 150.0; x += 30.0) {
    t.points.push_back(
        {proj.Unproject({x, 10.0}), (x + 150.0) / 10.0});
  }
  data.trajectories.push_back(t);
  ASSERT_TRUE(trimpute.Train(data).ok());
  EXPECT_EQ(trimpute.num_indexed_points(), t.points.size());
}

}  // namespace
}  // namespace kamel
