// Detokenization module tests (Section 7): DBSCAN, direction-aware
// cluster selection, and the three fallback cases of Figure 8.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/dbscan.h"
#include "core/detokenizer.h"
#include "grid/hex_grid.h"

namespace kamel {
namespace {

TEST(DbscanTest, TwoBlobsOneNoisePoint) {
  // 1D points: blob at 0, blob at 10, outlier at 100.
  const std::vector<double> xs = {0.0, 0.1, 0.2, 0.15, 10.0, 10.1,
                                  10.2, 10.05, 100.0};
  auto dist = [&xs](size_t i, size_t j) {
    return std::fabs(xs[i] - xs[j]);
  };
  const std::vector<int> labels = Dbscan(xs.size(), dist, 0.5, 3);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[7]);
  EXPECT_NE(labels[0], labels[4]);
  EXPECT_EQ(labels[8], kDbscanNoise);
}

TEST(DbscanTest, AllNoiseWhenSparse) {
  const std::vector<double> xs = {0.0, 10.0, 20.0};
  auto dist = [&xs](size_t i, size_t j) {
    return std::fabs(xs[i] - xs[j]);
  };
  for (int label : Dbscan(xs.size(), dist, 1.0, 2)) {
    EXPECT_EQ(label, kDbscanNoise);
  }
}

TEST(DbscanTest, BorderPointJoinsCluster) {
  // A chain where the tail point is density-reachable but not core.
  const std::vector<double> xs = {0.0, 0.4, 0.8, 1.2, 1.6, 2.4};
  auto dist = [&xs](size_t i, size_t j) {
    return std::fabs(xs[i] - xs[j]);
  };
  const std::vector<int> labels = Dbscan(xs.size(), dist, 0.5, 3);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[4], 0);
}

TEST(DbscanTest, EmptyInput) {
  EXPECT_TRUE(Dbscan(0, [](size_t, size_t) { return 0.0; }, 1.0, 2).empty());
}

class DetokenizerTest : public testing::Test {
 protected:
  DetokenizerTest() : grid_(75.0) {
    options_.eps_heading_deg = 30.0;
    options_.min_points = 4;
    detokenizer_ = std::make_unique<Detokenizer>(&grid_, options_);
  }

  // Adds `count` observations in the cell containing `base`, jittered
  // around `offset` from the cell centroid, all heading `heading`.
  void AddCluster(const Vec2& base, const Vec2& offset, double heading,
                  int count) {
    const Vec2 centroid = grid_.Centroid(grid_.CellOf(base));
    TokenizedTrajectory tokens;
    Rng rng(static_cast<uint64_t>(heading * 1000) + count);
    for (int i = 0; i < count; ++i) {
      const Vec2 p{centroid.x + offset.x + rng.NextDouble(-3, 3),
                   centroid.y + offset.y + rng.NextDouble(-3, 3)};
      tokens.push_back({grid_.CellOf(base), static_cast<double>(i), p,
                        heading + rng.NextDouble(-0.05, 0.05)});
    }
    detokenizer_->AddObservations(tokens);
  }

  HexGrid grid_;
  DbscanOptions options_;
  std::unique_ptr<Detokenizer> detokenizer_;
};

TEST_F(DetokenizerTest, UnseenTokenFallsBackToCellCentroid) {
  detokenizer_->Refit();
  const CellId cell = grid_.CellOf({500.0, 500.0});
  const Vec2 p = detokenizer_->PointOf(cell, 0.0);
  EXPECT_EQ(p, grid_.Centroid(cell));  // Figure 8(c)
}

TEST_F(DetokenizerTest, SingleClusterReturnsDataCentroid) {
  // Figure 8(b): one coherent flow through the cell.
  AddCluster({0, 0}, {15.0, -10.0}, 0.0, 12);
  detokenizer_->Refit();
  const CellId cell = grid_.CellOf({0, 0});
  ASSERT_EQ(detokenizer_->ClustersOf(cell).size(), 1u);
  const Vec2 p = detokenizer_->PointOf(cell, 0.0);
  const Vec2 centroid = grid_.Centroid(cell);
  EXPECT_NEAR(p.x, centroid.x + 15.0, 3.0);
  EXPECT_NEAR(p.y, centroid.y - 10.0, 3.0);
}

TEST_F(DetokenizerTest, DirectionSelectsAmongClusters) {
  // Figure 8(a): a right-turn cell — eastbound traffic drives south of
  // the centroid, northbound traffic drives east of it.
  AddCluster({0, 0}, {0.0, -20.0}, 0.0, 12);        // eastbound flow
  AddCluster({0, 0}, {20.0, 0.0}, M_PI / 2, 12);    // northbound flow
  detokenizer_->Refit();
  const CellId cell = grid_.CellOf({0, 0});
  ASSERT_EQ(detokenizer_->ClustersOf(cell).size(), 2u);

  const Vec2 east = detokenizer_->PointOf(cell, 0.05);
  const Vec2 north = detokenizer_->PointOf(cell, M_PI / 2 - 0.05);
  const Vec2 centroid = grid_.Centroid(cell);
  EXPECT_LT(east.y, centroid.y - 10.0);
  EXPECT_GT(north.x, centroid.x + 10.0);
}

TEST_F(DetokenizerTest, NoDirectionPicksDensestCluster) {
  AddCluster({0, 0}, {0.0, -20.0}, 0.0, 20);
  AddCluster({0, 0}, {20.0, 0.0}, M_PI / 2, 6);
  detokenizer_->Refit();
  const CellId cell = grid_.CellOf({0, 0});
  const Vec2 p = detokenizer_->PointOf(cell, std::nullopt);
  EXPECT_LT(p.y, grid_.Centroid(cell).y - 10.0);  // the 20-point cluster
}

TEST_F(DetokenizerTest, OppositeLanesSeparate) {
  // Eastbound and westbound traffic differ by pi: distinct clusters even
  // though they are spatially interleaved.
  AddCluster({0, 0}, {0.0, -8.0}, 0.0, 10);
  AddCluster({0, 0}, {0.0, 8.0}, M_PI, 10);
  detokenizer_->Refit();
  EXPECT_EQ(detokenizer_->ClustersOf(grid_.CellOf({0, 0})).size(), 2u);
}

TEST_F(DetokenizerTest, DetokenizeInteriorUsesSegmentDirection) {
  // Build a 3-cell eastward chain with direction-dependent clusters in
  // the middle cell.
  const CellId mid = grid_.CellOf({0, 0});
  AddCluster({0, 0}, {0.0, -20.0}, 0.0, 12);      // eastbound lane
  AddCluster({0, 0}, {0.0, 20.0}, M_PI, 12);      // westbound lane
  detokenizer_->Refit();

  const Vec2 centroid = grid_.Centroid(mid);
  const Vec2 west{centroid.x - 130.0, centroid.y};
  const Vec2 east{centroid.x + 130.0, centroid.y};
  const std::vector<CellId> cells = {grid_.CellOf(west), mid,
                                     grid_.CellOf(east)};
  // Travelling west -> east picks the eastbound lane (south offset).
  const std::vector<Vec2> forward =
      detokenizer_->DetokenizeInterior(cells, west, east);
  ASSERT_EQ(forward.size(), 1u);
  EXPECT_LT(forward[0].y, centroid.y);
  // Travelling east -> west picks the westbound lane.
  const std::vector<CellId> rcells = {cells[2], cells[1], cells[0]};
  const std::vector<Vec2> backward =
      detokenizer_->DetokenizeInterior(rcells, east, west);
  ASSERT_EQ(backward.size(), 1u);
  EXPECT_GT(backward[0].y, centroid.y);
}

TEST_F(DetokenizerTest, DetokenizeInteriorEmptyForShortSegments) {
  EXPECT_TRUE(detokenizer_->DetokenizeInterior({1, 2}, {0, 0}, {1, 1})
                  .empty());
}

TEST_F(DetokenizerTest, SaveLoadRoundTrip) {
  AddCluster({0, 0}, {10.0, 0.0}, 0.0, 8);
  AddCluster({300, 0}, {0.0, 10.0}, 1.0, 8);
  detokenizer_->Refit();

  BinaryWriter writer;
  detokenizer_->Save(&writer);
  Detokenizer loaded(&grid_, options_);
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Load(&reader).ok());
  EXPECT_EQ(loaded.num_tokens_with_clusters(),
            detokenizer_->num_tokens_with_clusters());
  const CellId cell = grid_.CellOf({0, 0});
  EXPECT_EQ(loaded.PointOf(cell, 0.0), detokenizer_->PointOf(cell, 0.0));
}

}  // namespace
}  // namespace kamel
