// Overload and degradation-ladder tests: admission control (block / shed /
// degrade), per-model circuit breakers with retry on the demand-load path,
// the explicit full-model -> pyramid-ancestor -> straight-line ladder, and
// engine health/drain semantics. This binary carries BOTH the "robustness"
// label (ASan/UBSan leg) and the "concurrency" label (TSan leg): every
// scenario here mixes threads with injected faults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

// Unlike the other mini fixtures this one needs a real (if tiny) pyramid:
// height 1 with both levels maintained, so every leaf model has a level-0
// ancestor for the ladder to fall through to. The threshold is low enough
// that the root model always exists (total tokens >= threshold * 4 implies
// at least one leaf too, by pigeonhole).
KamelOptions OverloadKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 25;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 150;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

constexpr int kRetries = 2;  // demand-load retries in the lazy fixtures

// Lazy-serving variant: models demand-load through the breaker-guarded
// cache. Backoff is token-sized (the schedule, not the wait, is under
// test) and the cooldown is long enough that breakers stay open for the
// rest of a test unless it opts into recovery with a shorter one.
KamelOptions LazyOverloadOptions(double breaker_cooldown_s = 60.0,
                                 int retries = kRetries) {
  KamelOptions options = OverloadKamelOptions();
  options.max_resident_models = 64;
  options.model_load_retries = retries;
  options.model_load_backoff_ms = 0.01;
  options.model_breaker_cooldown_s = breaker_cooldown_s;
  return options;
}

// Parks `workers` pool threads until Release(), so a test can hold the
// engine's queue at a known depth while it probes admission decisions.
class PoolGate {
 public:
  PoolGate(ThreadPool* pool, int workers) {
    for (int i = 0; i < workers; ++i) {
      pool->Schedule([this] {
        std::unique_lock<std::mutex> lock(mu_);
        ++blocked_;
        cv_.notify_all();
        cv_.wait(lock, [this] { return released_; });
      });
    }
  }
  ~PoolGate() { Release(); }

  void AwaitBlocked(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, n] { return blocked_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int blocked_ = 0;
  bool released_ = false;
};

class OverloadTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec()));
    system_ = new Kamel(OverloadKamelOptions());
    ASSERT_TRUE(system_->Train(scenario_->train).ok());
    snapshot_path_ =
        new std::string(testing::TempDir() + "/kamel_overload_snapshot.bin");
    ASSERT_TRUE(system_->SaveToFile(*snapshot_path_).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    delete scenario_;
    delete snapshot_path_;
    system_ = nullptr;
    scenario_ = nullptr;
    snapshot_path_ = nullptr;
  }

  void TearDown() override { FaultInjector::Instance().Reset(); }

  static Trajectory SparseTest(int index, double distance = 400.0) {
    return Sparsify(scenario_->test.trajectories[index], distance);
  }

  static TrajectoryDataset SparseBatch(size_t n) {
    TrajectoryDataset batch;
    for (size_t i = 0; i < n && i < scenario_->test.trajectories.size();
         ++i) {
      batch.trajectories.push_back(SparseTest(static_cast<int>(i)));
    }
    return batch;
  }

  /// A thin box at the center of a leaf cell whose single model resolves
  /// at level 1 on a clean system — the probe the breaker tests break.
  static std::optional<BBox> FindServableLeafBox(
      const ModelRepository& repo) {
    const Pyramid& pyramid = repo.pyramid();
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        const BBox cell = pyramid.CellBounds({1, x, y});
        BBox probe;
        probe.Extend(Vec2{(cell.min_x + cell.max_x) / 2,
                          (cell.min_y + cell.max_y) / 2});
        const auto selection = repo.SelectModelLadder(probe);
        if (selection.model != nullptr && selection.served_level == 1) {
          return probe;
        }
      }
    }
    return std::nullopt;
  }

  static SimScenario* scenario_;
  static Kamel* system_;
  static std::string* snapshot_path_;
};

SimScenario* OverloadTest::scenario_ = nullptr;
Kamel* OverloadTest::system_ = nullptr;
std::string* OverloadTest::snapshot_path_ = nullptr;

// ---- circuit breaker + ladder ----------------------------------------

TEST_F(OverloadTest, BreakerOpensAfterRetriesThenAncestorServes) {
  // A clean control run establishes which leaf model the probe resolves.
  Kamel control(LazyOverloadOptions());
  ASSERT_TRUE(control.LoadFromFile(*snapshot_path_).ok());
  auto control_snapshot = control.Snapshot();
  ASSERT_TRUE(control_snapshot.ok());
  const std::optional<BBox> leaf_box =
      FindServableLeafBox((*control_snapshot)->repository());
  ASSERT_TRUE(leaf_box.has_value())
      << "fixture produced no demand-loadable leaf model";

  // Fresh system, cold cache: the first demand load runs into the fault.
  Kamel faulted(LazyOverloadOptions());
  ASSERT_TRUE(faulted.LoadFromFile(*snapshot_path_).ok());
  auto snapshot = faulted.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const ModelRepository& repo = (*snapshot)->repository();
  const ShardedModelCache* cache = repo.cache();
  ASSERT_NE(cache, nullptr);
  FaultInjector& injector = FaultInjector::Instance();

  {
    // Exactly 1 + kRetries shots: the leaf's full retry sequence burns
    // them all, so the ancestor's load right after succeeds.
    ScopedFault fault("repo.model.load", 0, /*count=*/1 + kRetries);
    const auto selection = repo.SelectModelLadder(*leaf_box);

    // The leaf could not be served but its ancestor could: degraded, one
    // level coarser than the finest indexed model.
    ASSERT_NE(selection.model, nullptr);
    EXPECT_TRUE(selection.degraded());
    EXPECT_EQ(selection.finest_level, 1);
    EXPECT_LT(selection.served_level, selection.finest_level);

    // Counters match the fault schedule exactly: one miss burned
    // 1 + kRetries attempts and opened the one breaker; every other
    // miss loaded on its first attempt.
    EXPECT_EQ(cache->breaker_opens(), 1);
    EXPECT_EQ(cache->open_breakers(), 1);
    EXPECT_EQ(injector.HitCount("repo.model.load"),
              cache->misses() + kRetries);

    // Re-selecting short-circuits on the open breaker (no disk attempt)
    // and serves the now-cached ancestor: the hit identity is unchanged.
    const auto again = repo.SelectModelLadder(*leaf_box);
    ASSERT_NE(again.model, nullptr);
    EXPECT_TRUE(again.degraded());
    EXPECT_GE(cache->breaker_short_circuits(), 1);
    EXPECT_EQ(injector.HitCount("repo.model.load"),
              cache->misses() + kRetries);
  }

  // An engine over this snapshot reports the open breaker as DEGRADED —
  // serving continues, one rung down.
  ServingEngine engine(*snapshot, {.num_threads = 1});
  EXPECT_EQ(engine.health(), HealthState::kDegraded);
  auto imputed = engine.Impute(SparseTest(0));
  ASSERT_TRUE(imputed.ok());
}

TEST_F(OverloadTest, AllLoadsFailingCountersMatchScheduleExactly) {
  Kamel faulted(LazyOverloadOptions());
  ASSERT_TRUE(faulted.LoadFromFile(*snapshot_path_).ok());
  auto snapshot = faulted.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const ShardedModelCache* cache = (*snapshot)->repository().cache();
  ASSERT_NE(cache, nullptr);
  FaultInjector& injector = FaultInjector::Instance();

  Result<ImputedTrajectory> result = Status::Internal("not yet run");
  {
    ScopedFault fault("repo.model.load", 0, /*count=*/-1);
    result = (*snapshot)->Impute(SparseTest(1));

    // Every consulted slot burned its full retry budget exactly once and
    // opened its breaker; re-consultations short-circuited without disk
    // IO. The schedule arithmetic is exact, not approximate.
    EXPECT_EQ(cache->breaker_opens(), cache->misses());
    EXPECT_EQ(cache->open_breakers(), cache->breaker_opens());
    EXPECT_EQ(injector.HitCount("repo.model.load"),
              (1 + kRetries) * cache->misses());
  }
  ASSERT_TRUE(result.ok());

  // With no model servable anywhere, the ladder bottoms out: every
  // segment is a no-model linear failure and the model rungs count zero.
  const ImputeStats& stats = result->stats;
  EXPECT_GT(stats.segments, 0);
  EXPECT_EQ(stats.no_model_segments, stats.segments);
  EXPECT_EQ(stats.failed_segments, stats.segments);
  EXPECT_EQ(stats.full_model_segments, 0);
  EXPECT_EQ(stats.ancestor_segments, 0);
  EXPECT_EQ(stats.overload_segments, 0);
  EXPECT_EQ(stats.bert_calls, 0);
}

TEST_F(OverloadTest, BreakerReclosesAfterFaultsClearAndEngineRecovers) {
  // Short cooldown so the half-open probe happens within the test.
  Kamel recovering(LazyOverloadOptions(/*breaker_cooldown_s=*/0.05,
                                       /*retries=*/0));
  ASSERT_TRUE(recovering.LoadFromFile(*snapshot_path_).ok());
  auto snapshot = recovering.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const ShardedModelCache* cache = (*snapshot)->repository().cache();
  ASSERT_NE(cache, nullptr);
  ServingEngine engine(*snapshot, {.num_threads = 1});

  {
    ScopedFault fault("repo.model.load", 0, /*count=*/-1);
    auto broken = engine.Impute(SparseTest(1));
    ASSERT_TRUE(broken.ok());
    EXPECT_EQ(broken->stats.no_model_segments, broken->stats.segments);
  }
  ASSERT_GT(cache->open_breakers(), 0);
  EXPECT_EQ(engine.health(), HealthState::kDegraded);

  // Faults cleared (ScopedFault disarmed + Reset), cooldown elapsed: the
  // next request per broken model is the half-open probe, it succeeds,
  // and the breaker re-closes. The engine returns to SERVING by itself.
  FaultInjector::Instance().Reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto recovered = engine.Impute(SparseTest(1));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(cache->open_breakers(), 0);
  EXPECT_GT(recovered->stats.full_model_segments, 0);
  EXPECT_EQ(recovered->stats.full_model_segments,
            recovered->stats.segments);
  EXPECT_EQ(recovered->stats.no_model_segments, 0);
  EXPECT_EQ(recovered->stats.ancestor_segments, 0);
  EXPECT_EQ(engine.health(), HealthState::kServing);
}

// ---- admission control ------------------------------------------------

TEST_F(OverloadTest, ShedPolicyRefusesBeyondBoundWithoutExceedingIt) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot,
                       {.num_threads = 1,
                        .max_pending = 2,
                        .overload_policy = OverloadPolicy::kShed});
  PoolGate gate(engine.pool(), 1);
  gate.AwaitBlocked(1);

  auto f1 = engine.ImputeAsync(SparseTest(0));
  auto f2 = engine.ImputeAsync(SparseTest(1));
  EXPECT_EQ(engine.stats().pending, 2);
  EXPECT_EQ(engine.health(), HealthState::kShedding);

  // The third request is refused immediately — kResourceExhausted, and
  // the queue never grew past the bound.
  auto f3 = engine.ImputeAsync(SparseTest(2));
  EXPECT_EQ(f3.get().status().code(), StatusCode::kResourceExhausted);
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.pending, 2);
  EXPECT_LE(stats.peak_pending, 2);

  gate.Release();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_EQ(engine.stats().pending, 0);
  EXPECT_EQ(engine.health(), HealthState::kServing);
}

TEST_F(OverloadTest, BlockPolicyBackpressuresUntilASlotFrees) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot,
                       {.num_threads = 1,
                        .max_pending = 1,
                        .overload_policy = OverloadPolicy::kBlock});
  PoolGate gate(engine.pool(), 1);
  gate.AwaitBlocked(1);

  auto f1 = engine.ImputeAsync(SparseTest(0));
  EXPECT_EQ(engine.stats().pending, 1);

  std::atomic<bool> second_admitted{false};
  std::future<Result<ImputedTrajectory>> f2;
  std::thread blocked([&] {
    f2 = engine.ImputeAsync(SparseTest(1));  // parks in admission
    second_admitted.store(true);
  });
  // The slot cannot free while the gate is held, so the caller must
  // still be parked — this cannot flake, only fail on a real bug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());
  EXPECT_EQ(engine.stats().admitted, 1);

  gate.Release();
  blocked.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_EQ(stats.peak_pending, 1);  // backpressure held the bound
}

TEST_F(OverloadTest, DegradePolicyServesExcessAtBottomRung) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot,
                       {.num_threads = 1,
                        .max_pending = 1,
                        .overload_policy = OverloadPolicy::kDegrade});
  PoolGate gate(engine.pool(), 1);
  gate.AwaitBlocked(1);

  auto full = engine.ImputeAsync(SparseTest(0));
  auto degraded = engine.ImputeAsync(SparseTest(0));  // same input!
  EXPECT_EQ(engine.stats().degraded, 1);
  EXPECT_EQ(engine.health(), HealthState::kDegraded);

  gate.Release();
  auto full_result = full.get();
  auto degraded_result = degraded.get();
  ASSERT_TRUE(full_result.ok());
  ASSERT_TRUE(degraded_result.ok());

  // Same trajectory, different rungs: the in-bound request got models,
  // the over-bound one got straight lines and zero BERT work.
  EXPECT_EQ(full_result->stats.overload_segments, 0);
  EXPECT_GT(full_result->stats.full_model_segments, 0);
  const ImputeStats& d = degraded_result->stats;
  EXPECT_GT(d.segments, 0);
  EXPECT_EQ(d.overload_segments, d.segments);
  EXPECT_EQ(d.failed_segments, d.segments);
  EXPECT_EQ(d.full_model_segments, 0);
  EXPECT_EQ(d.ancestor_segments, 0);
  EXPECT_EQ(d.bert_calls, 0);
  EXPECT_EQ(engine.health(), HealthState::kServing);
}

TEST_F(OverloadTest, BatchReportsShedTrajectoriesAfterFinishingTheRest) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot,
                       {.num_threads = 1,
                        .max_pending = 1,
                        .overload_policy = OverloadPolicy::kShed});
  PoolGate gate(engine.pool(), 1);
  gate.AwaitBlocked(1);

  // Release the gate once the batch has been fully admitted/shed, so the
  // surviving item can run and the batch call can return.
  std::thread releaser([&] {
    while (engine.stats().shed < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate.Release();
  });
  auto batch = engine.ImputeBatch(SparseBatch(3));
  releaser.join();
  // Item 0 was admitted; items 1 and 2 were shed and the batch says so.
  EXPECT_EQ(batch.status().code(), StatusCode::kResourceExhausted);
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.shed, 2);
  EXPECT_EQ(stats.pending, 0);
}

// ---- drain ------------------------------------------------------------

TEST_F(OverloadTest, DrainWakesBlockedCallersAndFinishesInFlightWork) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot,
                       {.num_threads = 1,
                        .max_pending = 1,
                        .overload_policy = OverloadPolicy::kBlock});
  PoolGate gate(engine.pool(), 1);
  gate.AwaitBlocked(1);

  auto in_flight = engine.ImputeAsync(SparseTest(0));
  std::future<Result<ImputedTrajectory>> blocked_future;
  std::thread blocked([&] {
    // Either parks first and is woken by Drain, or observes draining on
    // entry — both must yield kUnavailable (pending can only drop after
    // the gate releases, which happens after draining() is observed).
    blocked_future = engine.ImputeAsync(SparseTest(1));
  });
  std::thread drainer([&] { engine.Drain(); });
  while (!engine.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.Release();
  drainer.join();
  blocked.join();

  // Drain returned only once the admitted imputation finished; the
  // blocked caller was refused, not stranded.
  EXPECT_TRUE(in_flight.get().ok());
  EXPECT_EQ(blocked_future.get().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.stats().pending, 0);
  EXPECT_EQ(engine.health(), HealthState::kDraining);
}

TEST_F(OverloadTest, DrainedEngineRefusesAllNewWork) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot, {.num_threads = 1});
  auto before = engine.ImputeAsync(SparseTest(0));
  engine.Drain();
  EXPECT_TRUE(before.get().ok());  // in-flight work completed

  EXPECT_TRUE(engine.draining());
  EXPECT_EQ(engine.health(), HealthState::kDraining);
  EXPECT_EQ(engine.Impute(SparseTest(0)).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(engine.ImputeAsync(SparseTest(0)).get().status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(engine.ImputeBatch(SparseBatch(2)).status().code(),
            StatusCode::kUnavailable);
  // Drain is idempotent and still returns promptly.
  engine.Drain();
  EXPECT_EQ(engine.stats().pending, 0);
}

// ---- streaming bypass -------------------------------------------------

TEST_F(OverloadTest, StreamingServesLinearOnlyWhileEngineIsDraining) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot, {.num_threads = 1});
  std::vector<ImputedTrajectory> delivered;
  std::mutex delivered_mu;
  FunctionSink sink([&](int64_t, ImputedTrajectory imputed) {
    std::lock_guard<std::mutex> lock(delivered_mu);
    delivered.push_back(std::move(imputed));
  });
  StreamingSession session(&engine, &sink);

  engine.Drain();
  const Trajectory sparse = SparseTest(0);
  for (const TrajPoint& point : sparse.points) {
    ASSERT_TRUE(session.Push(7, point).ok());
  }
  ASSERT_TRUE(session.EndTrajectory(7).ok());
  session.Drain();

  std::lock_guard<std::mutex> lock(delivered_mu);
  ASSERT_EQ(delivered.size(), 1u);
  const ImputeStats& stats = delivered[0].stats;
  // The streaming path bypasses admission but honors the ladder: during
  // drain every gap takes the bottom rung.
  EXPECT_GT(stats.segments, 0);
  EXPECT_EQ(stats.overload_segments, stats.segments);
  EXPECT_EQ(stats.bert_calls, 0);
}

}  // namespace
}  // namespace kamel
