// Tests for the extension components: kinematic interpolation baseline,
// bootstrap confidence intervals, and the maintenance scheduler.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/kinematic.h"
#include "baselines/linear.h"
#include "core/maintenance.h"
#include "eval/bootstrap.h"
#include "eval/evaluator.h"
#include "sim/datasets.h"

namespace kamel {
namespace {

TEST(KinematicTest, StraightGapStaysStraight) {
  // Endpoints moving in the same direction: the Hermite curve is the
  // straight line.
  KinematicInterpolation kinematic(100.0, 150.0);
  const LocalProjection proj({45.0, -93.0});
  Trajectory sparse;
  for (double x : {0.0, 100.0, 1100.0, 1200.0}) {
    sparse.points.push_back({proj.Unproject({x, 0.0}), x / 10.0});
  }
  ASSERT_TRUE(kinematic.Train(TrajectoryDataset{{sparse}}).ok());
  auto result = kinematic.Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.segments, 1);
  ASSERT_GT(result->trajectory.points.size(), sparse.points.size());
  for (const TrajPoint& p : result->trajectory.points) {
    EXPECT_NEAR(proj.Project(p.pos).y, 0.0, 1.0);
  }
}

TEST(KinematicTest, CurvedEntryBendsTheFill) {
  // The vehicle enters the gap heading north and leaves heading east:
  // the curve must bulge, unlike a straight line.
  KinematicInterpolation kinematic(100.0, 150.0);
  const LocalProjection proj({45.0, -93.0});
  Trajectory sparse;
  sparse.points.push_back({proj.Unproject({0.0, -200.0}), 0.0});
  sparse.points.push_back({proj.Unproject({0.0, 0.0}), 20.0});     // S
  sparse.points.push_back({proj.Unproject({800.0, 800.0}), 120.0}); // D
  sparse.points.push_back({proj.Unproject({1000.0, 800.0}), 140.0});
  ASSERT_TRUE(kinematic.Train(TrajectoryDataset{{sparse}}).ok());
  auto result = kinematic.Impute(sparse);
  ASSERT_TRUE(result.ok());
  double max_off_diagonal = 0.0;
  for (const TrajPoint& p : result->trajectory.points) {
    const Vec2 v = proj.Project(p.pos);
    if (v.y <= 0.0 || v.y >= 800.0) continue;
    // Signed distance from the S->D diagonal.
    const double off = std::fabs(v.y - v.x) / std::sqrt(2.0);
    max_off_diagonal = std::max(max_off_diagonal, off);
  }
  EXPECT_GT(max_off_diagonal, 40.0) << "curve did not bend";
}

TEST(KinematicTest, SegmentsAreNotCountedAsFailures) {
  // Kinematic interpolation always produces an answer; unlike Linear its
  // segments are genuine attempts, so failure stays at 0 and the metric
  // judges its geometry instead.
  KinematicInterpolation kinematic(100.0, 150.0);
  const LocalProjection proj({45.0, -93.0});
  Trajectory sparse;
  sparse.points = {{proj.Unproject({0, 0}), 0.0},
                   {proj.Unproject({1000, 0}), 100.0}};
  auto result = kinematic.Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.segments, 1);
  EXPECT_EQ(result->stats.failed_segments, 0);
}

class BootstrapTest : public testing::Test {
 protected:
  // A run where half the trajectories score recall 1 and half score 0
  // (imputed far away), giving a wide, easily-checked spread.
  static RunOutput MixedRun() {
    RunOutput run;
    for (int i = 0; i < 12; ++i) {
      TrajRun traj;
      traj.dense = {{0, 0}, {500, 0}};
      traj.dense_times = {0.0, 50.0};
      traj.sparse_times = {0.0, 50.0};
      if (i % 2 == 0) {
        traj.imputed = traj.dense;  // perfect
        traj.imputed_times = traj.dense_times;
      } else {
        traj.imputed = {{0, 4000}, {500, 4000}};  // hopeless
        traj.imputed_times = traj.dense_times;
      }
      run.runs.push_back(std::move(traj));
      ++run.trajectories;
    }
    return run;
  }
};

TEST_F(BootstrapTest, PointEstimateMatchesPlainScore) {
  const LocalProjection proj({45.0, -93.0});
  const Evaluator evaluator(&proj);
  const RunOutput run = MixedRun();
  ScoreConfig config;
  config.delta_m = 50.0;
  const EvalResult plain = evaluator.Score(run, config);
  const ScoredWithIntervals scored =
      ScoreWithBootstrap(evaluator, run, config);
  EXPECT_DOUBLE_EQ(scored.recall.value, plain.recall);
  EXPECT_DOUBLE_EQ(scored.precision.value, plain.precision);
}

TEST_F(BootstrapTest, IntervalCoversPointAndHasSpread) {
  const LocalProjection proj({45.0, -93.0});
  const Evaluator evaluator(&proj);
  const RunOutput run = MixedRun();
  ScoreConfig config;
  config.delta_m = 50.0;
  BootstrapOptions options;
  options.resamples = 300;
  const ScoredWithIntervals scored =
      ScoreWithBootstrap(evaluator, run, config, options);
  EXPECT_LE(scored.recall.lo, scored.recall.value);
  EXPECT_GE(scored.recall.hi, scored.recall.value);
  // Half the trajectories at 0, half at 1 -> the CI must be clearly wide.
  EXPECT_GT(scored.recall.hi - scored.recall.lo, 0.15);
  EXPECT_NEAR(scored.recall.value, 0.5, 0.01);
}

TEST_F(BootstrapTest, DeterministicForSeed) {
  const LocalProjection proj({45.0, -93.0});
  const Evaluator evaluator(&proj);
  const RunOutput run = MixedRun();
  const ScoreConfig config;
  const ScoredWithIntervals a = ScoreWithBootstrap(evaluator, run, config);
  const ScoredWithIntervals b = ScoreWithBootstrap(evaluator, run, config);
  EXPECT_DOUBLE_EQ(a.recall.lo, b.recall.lo);
  EXPECT_DOUBLE_EQ(a.recall.hi, b.recall.hi);
}

TEST_F(BootstrapTest, EmptyRunDegeneratesGracefully) {
  const LocalProjection proj({45.0, -93.0});
  const Evaluator evaluator(&proj);
  const RunOutput run;
  const ScoredWithIntervals scored =
      ScoreWithBootstrap(evaluator, run, ScoreConfig{});
  EXPECT_EQ(scored.recall.lo, scored.recall.hi);
}

TEST(MaintenanceTest, BatchesUntilThreshold) {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 40;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.train.steps = 30;
  options.bert.train.batch_size = 4;
  Kamel system(options);

  MaintenanceOptions policy;
  policy.min_batch_trajectories = 8;
  policy.min_batch_points = 100000;
  MaintenanceScheduler scheduler(&system, policy);

  const SimScenario scenario = BuildScenario(MiniSpec(51));
  // Seven submissions: still pending, system untrained.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(
        scheduler.Submit(scenario.train.trajectories[i]).ok());
  }
  EXPECT_EQ(scheduler.pending_trajectories(), 7u);
  EXPECT_FALSE(system.trained());
  EXPECT_EQ(scheduler.batches_trained(), 0);

  // The eighth crosses the threshold: one training batch fires.
  ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[7]).ok());
  EXPECT_EQ(scheduler.pending_trajectories(), 0u);
  EXPECT_TRUE(system.trained());
  EXPECT_EQ(scheduler.batches_trained(), 1);

  // Flush trains the remainder.
  ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[8]).ok());
  ASSERT_TRUE(scheduler.Flush().ok());
  EXPECT_EQ(scheduler.batches_trained(), 2);
  ASSERT_TRUE(scheduler.Flush().ok());  // no-op
  EXPECT_EQ(scheduler.batches_trained(), 2);
}

TEST(MaintenanceTest, PointThresholdAlsoTriggers) {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 10;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.train.steps = 20;
  options.bert.train.batch_size = 4;
  Kamel system(options);
  MaintenanceOptions policy;
  policy.min_batch_trajectories = 1000;
  policy.min_batch_points = 30;  // tiny: a couple of trips cross it
  MaintenanceScheduler scheduler(&system, policy);
  const SimScenario scenario = BuildScenario(MiniSpec(53));
  int i = 0;
  while (scheduler.batches_trained() == 0 &&
         i < static_cast<int>(scenario.train.trajectories.size())) {
    ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[i++]).ok());
  }
  EXPECT_EQ(scheduler.batches_trained(), 1);
  EXPECT_EQ(scheduler.pending_points(), 0u);
}

}  // namespace
}  // namespace kamel
