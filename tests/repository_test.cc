// Model repository tests (Section 4): threshold-gated building of
// single-cell and neighbor-cells models, smallest-enclosing retrieval,
// the no-partitioning ablation, and persistence.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_repository.h"
#include "grid/hex_grid.h"

namespace kamel {
namespace {

// Tiny encoder so each model trains in tens of milliseconds.
KamelOptions TinyOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;  // maintain levels 0 and 1
  options.model_token_threshold = 40;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.encoder.dropout = 0.0;
  options.bert.train.steps = 30;
  options.bert.train.batch_size = 4;
  options.seed = 5;
  return options;
}

class RepositoryTest : public testing::Test {
 protected:
  RepositoryTest()
      : grid_(75.0),
        world_(BBox::FromCorners({0, 0}, {2000, 2000})) {}

  // Adds a horizontal trajectory of `tokens` cells centered in the given
  // region (y constant), 130 m apart so every cell is distinct.
  void AddTrajectory(double x0, double y, int tokens) {
    TokenizedTrajectory trajectory;
    for (int i = 0; i < tokens; ++i) {
      const Vec2 p{x0 + i * 130.0, y};
      trajectory.push_back(
          {grid_.CellOf(p), static_cast<double>(i) * 10.0, p, 0.0});
    }
    indices_.push_back(store_->Add(std::move(trajectory)));
  }

  HexGrid grid_;
  BBox world_;
  std::shared_ptr<TrajectoryStore> store_ =
      std::make_shared<TrajectoryStore>();
  std::vector<size_t> indices_;
};

TEST_F(RepositoryTest, BuildsNothingBelowThreshold) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  AddTrajectory(100.0, 500.0, 5);  // 5 tokens << 40
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  EXPECT_EQ(repo.num_models(), 0);
  EXPECT_EQ(repo.SelectModel(BBox::FromCorners({100, 450}, {300, 550})),
            nullptr);
}

TEST_F(RepositoryTest, BuildsSingleCellModelAboveThreshold) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  // 50 tokens confined to the south-west quadrant (level-1 cell (0,0),
  // bounds [0,1000)^2). Level-1 threshold = 40; level-0 needs 160.
  for (int t = 0; t < 10; ++t) {
    AddTrajectory(100.0, 200.0 + t * 60.0, 5);
  }
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  EXPECT_EQ(repo.num_single_models(), 1);
  EXPECT_EQ(repo.num_neighbor_models(), 0);

  // Retrieval: an MBR inside the quadrant finds it...
  const ModelHandle model =
      repo.SelectModel(BBox::FromCorners({100, 200}, {600, 700}));
  EXPECT_NE(model, nullptr);
  // ...but one spanning all quadrants does not (no root model: only 50
  // tokens < 160).
  EXPECT_EQ(repo.SelectModel(BBox::FromCorners({100, 100}, {1900, 1900})),
            nullptr);
}

TEST_F(RepositoryTest, BuildsRootAndNeighborModels) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  // West half: 100 tokens in SW (cell (0,0)), 60 in NW (cell (0,1)).
  // Thresholds: single 40 at level 1, pair 80, root 160.
  for (int t = 0; t < 20; ++t) AddTrajectory(120.0, 150.0 + t * 40.0, 5);
  for (int t = 0; t < 12; ++t) AddTrajectory(120.0, 1150.0 + t * 40.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());

  // SW and NW singles, the SW-NW vertical pair (and possibly pairs with
  // empty east cells never meet 2x threshold), plus the root (160 total).
  EXPECT_GE(repo.num_single_models(), 3);  // SW, NW, root
  EXPECT_GE(repo.num_neighbor_models(), 1);

  // A segment crossing the SW/NW border retrieves the pair model, which
  // is smaller than the root.
  const ModelHandle pair =
      repo.SelectModel(BBox::FromCorners({100, 800}, {400, 1200}));
  ASSERT_NE(pair, nullptr);
  const ModelHandle root =
      repo.SelectModel(BBox::FromCorners({100, 100}, {1900, 1900}));
  ASSERT_NE(root, nullptr);
  EXPECT_NE(pair, root);

  // Deepest-first: an MBR inside SW picks the SW single, not the root.
  const ModelHandle sw =
      repo.SelectModel(BBox::FromCorners({100, 150}, {500, 600}));
  ASSERT_NE(sw, nullptr);
  EXPECT_NE(sw, root);
}

TEST_F(RepositoryTest, GlobalModelWhenPartitioningDisabled) {
  KamelOptions options = TinyOptions();
  options.enable_partitioning = false;
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  AddTrajectory(100.0, 500.0, 5);  // way below any threshold
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  EXPECT_EQ(repo.num_models(), 1);
  // Everything retrieves the single global model.
  const ModelHandle a = repo.SelectModel(BBox::FromCorners({0, 0}, {50, 50}));
  const ModelHandle b =
      repo.SelectModel(BBox::FromCorners({0, 0}, {1999, 1999}));
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(a, b);
}

TEST_F(RepositoryTest, ModelInfosDescribeBuilds) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  for (int t = 0; t < 10; ++t) AddTrajectory(100.0, 200.0 + t * 60.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  const std::vector<ModelInfo> infos = repo.ModelInfos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].kind, "single");
  EXPECT_EQ(infos[0].tokens_at_build, 50);
  EXPECT_EQ(infos[0].statements_at_build, 10);
  EXPECT_EQ(infos[0].build_count, 1);
  EXPECT_GT(repo.total_train_seconds(), 0.0);
}

TEST_F(RepositoryTest, SecondBatchRefreshesModels) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  for (int t = 0; t < 10; ++t) AddTrajectory(100.0, 200.0 + t * 60.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  EXPECT_EQ(repo.num_single_models(), 1);

  indices_.clear();
  for (int t = 0; t < 10; ++t) AddTrajectory(150.0, 230.0 + t * 60.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  // The SW single was refreshed in place (not duplicated); the doubled
  // token count may additionally warrant pair/parent models.
  EXPECT_GE(repo.num_single_models(), 1);
  const ModelInfo* sw_info = nullptr;
  for (const ModelInfo& info : repo.ModelInfos()) {
    if (info.kind == "single" && info.build_count == 2) sw_info = &info;
  }
  ASSERT_NE(sw_info, nullptr) << "refreshed single-cell model not found";
  EXPECT_EQ(sw_info->tokens_at_build, 100);  // enriched with the store
}

TEST_F(RepositoryTest, SaveLoadRoundTrip) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  for (int t = 0; t < 20; ++t) AddTrajectory(120.0, 150.0 + t * 40.0, 5);
  for (int t = 0; t < 12; ++t) AddTrajectory(120.0, 1150.0 + t * 40.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());

  BinaryWriter writer;
  ASSERT_TRUE(repo.Save(&writer).ok());
  ModelRepository loaded(pyramid, options, store_);
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Load(&reader).ok());
  EXPECT_EQ(loaded.num_models(), repo.num_models());
  EXPECT_EQ(loaded.num_single_models(), repo.num_single_models());
  EXPECT_EQ(loaded.num_neighbor_models(), repo.num_neighbor_models());
  EXPECT_DOUBLE_EQ(loaded.total_train_seconds(),
                   repo.total_train_seconds());

  // A model retrieved from the loaded repository predicts identically.
  const BBox query = BBox::FromCorners({100, 150}, {500, 600});
  const ModelHandle original = repo.SelectModel(query);
  const ModelHandle restored = loaded.SelectModel(query);
  ASSERT_NE(original, nullptr);
  ASSERT_NE(restored, nullptr);
  const CellId s = grid_.CellOf({120, 150});
  const CellId d = grid_.CellOf({380, 150});
  const auto before = original->PredictMasked({s}, {d}, 3);
  const auto after = restored->PredictMasked({s}, {d}, 3);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].cell, after[i].cell);
  }
}

TEST_F(RepositoryTest, LazyLoadServesFromBoundedCache) {
  KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  for (int t = 0; t < 20; ++t) AddTrajectory(120.0, 150.0 + t * 40.0, 5);
  for (int t = 0; t < 12; ++t) AddTrajectory(120.0, 1150.0 + t * 40.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  ASSERT_GE(repo.num_models(), 3);

  BinaryWriter writer;
  ASSERT_TRUE(repo.Save(&writer).ok());
  const std::string path = testing::TempDir() + "/repo_lazy_test.bin";
  ASSERT_TRUE(writer.FlushToFileAtomic(path).ok());

  // Demand-loading mode: keep at most one resident model; the rest stay
  // on disk and fault in through the sharded cache on SelectModel.
  options.max_resident_models = 1;
  ModelRepository lazy(pyramid, options, /*store=*/nullptr);
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(lazy.Load(&*reader, nullptr, &path).ok());
  EXPECT_EQ(lazy.num_models(), repo.num_models());
  ASSERT_NE(lazy.cache(), nullptr);
  EXPECT_EQ(lazy.cache()->misses(), 0);

  // Alternate between two models so the 1-entry-per-shard cache churns;
  // predictions must match the fully resident repository either way.
  const BBox sw_query = BBox::FromCorners({100, 150}, {500, 600});
  const BBox root_query = BBox::FromCorners({100, 100}, {1900, 1900});
  const CellId s = grid_.CellOf({120, 150});
  const CellId d = grid_.CellOf({380, 150});
  for (int round = 0; round < 3; ++round) {
    for (const BBox& query : {sw_query, root_query}) {
      const ModelHandle eager = repo.SelectModel(query);
      const ModelHandle demand = lazy.SelectModel(query);
      ASSERT_NE(eager, nullptr);
      ASSERT_NE(demand, nullptr);
      const auto want = eager->PredictMasked({s}, {d}, 3);
      const auto got = demand->PredictMasked({s}, {d}, 3);
      ASSERT_EQ(want.size(), got.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].cell, got[i].cell);
      }
    }
  }
  EXPECT_GT(lazy.cache()->misses(), 0);
}

TEST_F(RepositoryTest, LoadRejectsGarbage) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  BinaryWriter writer;
  writer.WriteString("garbage");
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(repo.Load(&reader).ok());
}

}  // namespace
}  // namespace kamel
