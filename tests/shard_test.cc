// Sharded-serving tests: the socket frame codec (CRC, truncation,
// deadlines), the RPC layer's error mapping (transport vs handler
// status), the cell-prefix partition rules, the wire codecs, and the
// router/worker fleet end to end — byte-identity with single-process
// imputation while healthy, failover + recovery across a worker kill and
// restart, and hedging under an injected straggler. The binary carries
// "shard" for direct selection plus "robustness" (ASan/UBSan leg) and
// "concurrency" (TSan leg): every fleet test mixes threads with sockets
// and injected faults.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "net/frame.h"
#include "net/rpc.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

using shard::MakePartition;
using shard::RouterOptions;
using shard::ShardEndpoint;
using shard::ShardOfCell;
using shard::ShardOfGap;
using shard::ShardOwns;
using shard::ShardPartition;
using shard::ShardRouter;
using shard::ShardWorker;
using shard::WorkerOptions;

// ---------------------------------------------------------------------------
// Frame layer

// A connected loopback pair (plus the listener keeping the port open).
class LoopbackPair {
 public:
  void Init() {
    uint16_t port = 0;
    Result<net::Socket> listener = net::ListenTcp("127.0.0.1", 0, &port);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(listener).value();
    Result<net::Socket> client =
        net::ConnectTcp("127.0.0.1", port, net::NowSeconds() + 2.0);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(client).value();
    Result<net::Socket> server = net::Accept(listener_, net::NowSeconds() + 2.0);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  net::Socket listener_;
  net::Socket client_;
  net::Socket server_;
};

// Pushes raw bytes (not a well-formed frame) to exercise the receiver's
// corruption checks.
void SendRaw(const net::Socket& socket, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(socket.fd(), bytes + sent, size - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

class FrameTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FrameTest, RoundTripsPayload) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  const std::vector<uint8_t> payload = {0, 1, 2, 250, 251, 252};
  ASSERT_TRUE(
      net::SendFrame(pair.client_, payload, net::NowSeconds() + 2.0).ok());
  Result<std::vector<uint8_t>> got =
      net::RecvFrame(pair.server_, net::NowSeconds() + 2.0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
}

TEST_F(FrameTest, BadMagicIsIOError) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  uint8_t header[net::kFrameHeaderBytes] = {};
  const uint32_t magic = 0xDEADBEEFu;
  std::memcpy(header, &magic, sizeof(magic));
  ASSERT_NO_FATAL_FAILURE(SendRaw(pair.client_, header, sizeof(header)));
  Result<std::vector<uint8_t>> got =
      net::RecvFrame(pair.server_, net::NowSeconds() + 2.0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST_F(FrameTest, CrcMismatchIsIOError) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  // Valid magic and length, garbage checksum.
  uint8_t frame[net::kFrameHeaderBytes + 4] = {};
  const uint32_t len = 4;
  const uint32_t crc = 0;  // crc32c("abcd") is nonzero
  std::memcpy(frame, &net::kFrameMagic, sizeof(uint32_t));
  std::memcpy(frame + 4, &len, sizeof(uint32_t));
  std::memcpy(frame + 8, &crc, sizeof(uint32_t));
  std::memcpy(frame + 12, "abcd", 4);
  ASSERT_NO_FATAL_FAILURE(SendRaw(pair.client_, frame, sizeof(frame)));
  Result<std::vector<uint8_t>> got =
      net::RecvFrame(pair.server_, net::NowSeconds() + 2.0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST_F(FrameTest, SilentWireIsDeadlineExceeded) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  Result<std::vector<uint8_t>> got =
      net::RecvFrame(pair.server_, net::NowSeconds() + 0.05);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FrameTest, PeerCloseIsUnavailable) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  pair.client_.Close();
  Result<std::vector<uint8_t>> got =
      net::RecvFrame(pair.server_, net::NowSeconds() + 2.0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_F(FrameTest, TornFrameStallsReceiverIntoDeadline) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  ScopedFault torn("net.frame.truncate");
  const std::vector<uint8_t> payload(64, 0xAB);
  // The torn write itself reports success (the failure is the peer's to
  // discover), exactly like a crash between two write() calls.
  ASSERT_TRUE(
      net::SendFrame(pair.client_, payload, net::NowSeconds() + 2.0).ok());
  Result<std::vector<uint8_t>> got =
      net::RecvFrame(pair.server_, net::NowSeconds() + 0.3);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FrameTest, DroppedFrameNeverArrives) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  ScopedFault drop("net.send.drop");
  const std::vector<uint8_t> payload = {1, 2, 3};
  ASSERT_TRUE(
      net::SendFrame(pair.client_, payload, net::NowSeconds() + 2.0).ok());
  Result<std::vector<uint8_t>> got =
      net::RecvFrame(pair.server_, net::NowSeconds() + 0.2);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FrameTest, SendFailpointBreaksTheCall) {
  LoopbackPair pair;
  ASSERT_NO_FATAL_FAILURE(pair.Init());
  ScopedFault broken("net.send");
  const std::vector<uint8_t> payload = {1};
  EXPECT_FALSE(
      net::SendFrame(pair.client_, payload, net::NowSeconds() + 1.0).ok());
}

// ---------------------------------------------------------------------------
// RPC layer

class RpcTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(RpcTest, EchoRoundTripAndHandlerStatus) {
  net::RpcServer server;
  server.Register(1, [](const std::vector<uint8_t>& body)
                         -> Result<std::vector<uint8_t>> { return body; });
  server.Register(2, [](const std::vector<uint8_t>&)
                         -> Result<std::vector<uint8_t>> {
    return Status::ResourceExhausted("shed by test handler");
  });
  ASSERT_TRUE(server.Start(0).ok());

  net::RpcClient client("127.0.0.1", server.port());
  const std::vector<uint8_t> body = {9, 8, 7};
  Result<std::vector<uint8_t>> echoed = client.Call(1, body);
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(*echoed, body);

  // A handler error travels as a first-class Status: same code, message
  // intact — the router tells "the shard shed" apart from "the wire broke"
  // by exactly this.
  Result<std::vector<uint8_t>> shed = client.Call(2, body);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("shed by test handler"),
            std::string::npos);

  Result<std::vector<uint8_t>> unknown = client.Call(99, body);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kUnimplemented);
}

TEST_F(RpcTest, DeadPortIsUnavailableAfterConnectRetries) {
  // Grab a free port, then close the listener so nothing serves it.
  uint16_t port = 0;
  {
    Result<net::Socket> listener = net::ListenTcp("127.0.0.1", 0, &port);
    ASSERT_TRUE(listener.ok());
  }
  net::RpcClientOptions options;
  options.connect_timeout_s = 0.2;
  options.call_deadline_s = 1.0;
  options.connect_retry.max_retries = 1;
  options.connect_retry.base_backoff_ms = 1.0;
  net::RpcClient client("127.0.0.1", port, options);
  Result<std::vector<uint8_t>> got = client.Call(1, {1});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_F(RpcTest, CallDeadlinePoisonsConnectionThenRecovers) {
  net::RpcServer server;
  server.Register(1, [](const std::vector<uint8_t>& body)
                         -> Result<std::vector<uint8_t>> {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return body;
  });
  ASSERT_TRUE(server.Start(0).ok());

  net::RpcClient client("127.0.0.1", server.port());
  Result<std::vector<uint8_t>> slow = client.Call(1, {1}, 0.05);
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kDeadlineExceeded);
  // The timed-out connection was poisoned; the next call reconnects, so
  // the stale response can never be read as this call's reply.
  Result<std::vector<uint8_t>> fresh = client.Call(1, {2}, 5.0);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(*fresh, std::vector<uint8_t>({2}));
}

TEST_F(RpcTest, ConnectFailpointMapsToUnavailable) {
  net::RpcServer server;
  server.Register(1, [](const std::vector<uint8_t>& body)
                         -> Result<std::vector<uint8_t>> { return body; });
  ASSERT_TRUE(server.Start(0).ok());

  net::RpcClientOptions options;
  options.connect_retry.max_retries = 1;
  options.connect_retry.base_backoff_ms = 1.0;
  net::RpcClient client("127.0.0.1", server.port(), options);
  {
    ScopedFault dead("net.connect", /*skip=*/0, /*count=*/-1);
    Result<std::vector<uint8_t>> got = client.Call(1, {1});
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  }
  Result<std::vector<uint8_t>> got = client.Call(1, {1});
  EXPECT_TRUE(got.ok()) << got.status().ToString();
}

// ---------------------------------------------------------------------------
// Partition rules

Pyramid TestPyramid(int height = 3) {
  return Pyramid(BBox::FromCorners({0.0, 0.0}, {1000.0, 1000.0}), height,
                 height + 1);
}

TEST(PartitionTest, MakePartitionPicksShallowestSufficientLevel) {
  const Pyramid pyramid = TestPyramid();
  EXPECT_EQ(MakePartition(pyramid, 1).level, 0);
  EXPECT_EQ(MakePartition(pyramid, 2).level, 1);
  EXPECT_EQ(MakePartition(pyramid, 4).level, 1);
  EXPECT_EQ(MakePartition(pyramid, 5).level, 2);
  EXPECT_EQ(MakePartition(pyramid, 16).level, 2);
  EXPECT_EQ(MakePartition(pyramid, 17).level, 3);
  // More shards than the deepest level has cells: clamp, some shards own
  // nothing (and serve only as failover targets).
  EXPECT_EQ(MakePartition(pyramid, 100).level, 3);
  EXPECT_EQ(MakePartition(pyramid, 100).num_shards, 100);
}

TEST(PartitionTest, ShardOfCellCoversEveryShard) {
  const Pyramid pyramid = TestPyramid();
  for (int num_shards : {2, 3, 4}) {
    const ShardPartition partition = MakePartition(pyramid, num_shards);
    const int dim = 1 << partition.level;
    std::vector<bool> covered(num_shards, false);
    for (int y = 0; y < dim; ++y) {
      for (int x = 0; x < dim; ++x) {
        const int shard =
            ShardOfCell(partition, PyramidCell{partition.level, x, y});
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, num_shards);
        covered[shard] = true;
      }
    }
    for (int s = 0; s < num_shards; ++s) {
      EXPECT_TRUE(covered[s]) << "shard " << s << " owns no cell with "
                              << num_shards << " shards";
    }
  }
}

TEST(PartitionTest, ShardOfGapFollowsTheMbrCenter) {
  const Pyramid pyramid = TestPyramid();
  const ShardPartition partition = MakePartition(pyramid, 2);
  ASSERT_EQ(partition.level, 1);  // 2x2 key cells of 500m

  SegmentContext gap;
  gap.s.position = {100.0, 100.0};
  gap.d.position = {200.0, 200.0};  // center (150, 150) -> cell (0, 0)
  EXPECT_EQ(ShardOfGap(partition, pyramid, gap),
            ShardOfCell(partition, PyramidCell{1, 0, 0}));

  gap.s.position = {600.0, 100.0};
  gap.d.position = {900.0, 300.0};  // center (750, 200) -> cell (1, 0)
  EXPECT_EQ(ShardOfGap(partition, pyramid, gap),
            ShardOfCell(partition, PyramidCell{1, 1, 0}));
}

TEST(PartitionTest, ShardOwnsFollowsIntersections) {
  const Pyramid pyramid = TestPyramid();
  const ShardPartition partition = MakePartition(pyramid, 2);
  const int shard00 = ShardOfCell(partition, PyramidCell{1, 0, 0});
  const int shard10 = ShardOfCell(partition, PyramidCell{1, 1, 0});
  ASSERT_NE(shard00, shard10);

  // A box inside one key cell belongs to that cell's shard only.
  const BBox inner = BBox::FromCorners({10.0, 10.0}, {20.0, 20.0});
  EXPECT_TRUE(ShardOwns(partition, pyramid, shard00, inner));
  EXPECT_FALSE(ShardOwns(partition, pyramid, shard10, inner));

  // A box straddling the west/east cell boundary is replicated on both.
  const BBox straddling = BBox::FromCorners({400.0, 10.0}, {600.0, 20.0});
  EXPECT_TRUE(ShardOwns(partition, pyramid, shard00, straddling));
  EXPECT_TRUE(ShardOwns(partition, pyramid, shard10, straddling));

  // The global model's empty bounds are owned everywhere.
  EXPECT_TRUE(ShardOwns(partition, pyramid, shard00, BBox()));
  EXPECT_TRUE(ShardOwns(partition, pyramid, shard10, BBox()));
}

// ---------------------------------------------------------------------------
// Wire codecs

TokenPoint MakeToken(uint64_t cell, double time, double x, double y,
                     double heading) {
  TokenPoint token;
  token.cell = cell;
  token.time = time;
  token.position = {x, y};
  token.heading = heading;
  return token;
}

TEST(WireTest, GapRequestRoundTrips) {
  std::vector<SegmentContext> gaps(2);
  gaps[0].s = MakeToken(7, 10.0, 1.5, -2.5, 0.25);
  gaps[0].d = MakeToken(9, 20.0, 3.5, 4.5, -0.5);
  gaps[0].prev = MakeToken(5, 5.0, 0.5, 0.25, 1.0);
  gaps[1].s = MakeToken(11, 30.0, 6.0, 7.0, 2.0);
  gaps[1].d = MakeToken(13, 40.0, 8.0, 9.0, 3.0);
  gaps[1].next = MakeToken(17, 50.0, 10.0, 11.0, -3.0);

  Result<std::vector<SegmentContext>> decoded =
      shard::DecodeGapRequest(shard::EncodeGapRequest(gaps));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].s.cell, 7u);
  EXPECT_EQ((*decoded)[0].d.time, 20.0);
  ASSERT_TRUE((*decoded)[0].prev.has_value());
  EXPECT_EQ((*decoded)[0].prev->heading, 1.0);
  EXPECT_FALSE((*decoded)[0].next.has_value());
  EXPECT_FALSE((*decoded)[1].prev.has_value());
  ASSERT_TRUE((*decoded)[1].next.has_value());
  EXPECT_EQ((*decoded)[1].next->position.x, 10.0);
  EXPECT_EQ((*decoded)[1].d.position.y, 9.0);
}

TEST(WireTest, GapResponseRoundTrips) {
  std::vector<ImputedGap> gaps(1);
  gaps[0].interior = {TrajPoint{{30.5, 31.25}, 12.0},
                      TrajPoint{{30.625, 31.375}, 13.0}};
  gaps[0].stats.segments = 1;
  gaps[0].stats.full_model_segments = 1;
  gaps[0].stats.bert_calls = 42;
  gaps[0].stats.outcomes = {{12.0, 13.0, false}};

  Result<std::vector<ImputedGap>> decoded =
      shard::DecodeGapResponse(shard::EncodeGapResponse(gaps));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  ASSERT_EQ((*decoded)[0].interior.size(), 2u);
  EXPECT_EQ((*decoded)[0].interior[0].pos.lat, 30.5);
  EXPECT_EQ((*decoded)[0].interior[1].time, 13.0);
  EXPECT_EQ((*decoded)[0].stats.segments, 1);
  EXPECT_EQ((*decoded)[0].stats.full_model_segments, 1);
  EXPECT_EQ((*decoded)[0].stats.bert_calls, 42);
  ASSERT_EQ((*decoded)[0].stats.outcomes.size(), 1u);
  EXPECT_EQ((*decoded)[0].stats.outcomes[0].d_time, 13.0);
  EXPECT_FALSE((*decoded)[0].stats.outcomes[0].failed);
}

TEST(WireTest, StatusRoundTripsAndRejectsUnknownHealth) {
  shard::ShardStatus status;
  status.shard = 3;
  status.health = HealthState::kShedding;
  status.json = "{\"health\":\"SHEDDING\"}";
  std::vector<uint8_t> body = shard::EncodeStatus(status);

  Result<shard::ShardStatus> decoded = shard::DecodeStatus(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shard, 3);
  EXPECT_EQ(decoded->health, HealthState::kShedding);
  EXPECT_EQ(decoded->json, status.json);

  body[4] = 9;  // i32 shard, then the health byte
  EXPECT_FALSE(shard::DecodeStatus(body).ok());
}

TEST(WireTest, TruncatedBodiesAreDescriptiveErrors) {
  std::vector<SegmentContext> gaps(1);
  gaps[0].s = MakeToken(1, 1.0, 1.0, 1.0, 1.0);
  gaps[0].d = MakeToken(2, 2.0, 2.0, 2.0, 2.0);
  std::vector<uint8_t> body = shard::EncodeGapRequest(gaps);
  body.resize(body.size() / 2);
  Result<std::vector<SegmentContext>> decoded = shard::DecodeGapRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);

  // A length prefix promising more than the body holds is corruption,
  // not an allocation request.
  std::vector<uint8_t> huge(8, 0xFF);
  EXPECT_FALSE(shard::DecodeGapRequest(huge).ok());
  EXPECT_FALSE(shard::DecodeGapResponse(huge).ok());
}

// ---------------------------------------------------------------------------
// Router + worker fleet

// Same shape as the overload fixture: a real (height-1) pyramid with both
// levels maintained, so the partition has 4 key cells to spread across
// two workers and every leaf model has a replicated level-0 ancestor.
KamelOptions ShardKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 25;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 150;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

// Everything except wall-clock time must match: points bitwise, every
// ladder counter, and the per-segment outcomes.
void ExpectSameImputation(const ImputedTrajectory& a,
                          const ImputedTrajectory& b) {
  ASSERT_EQ(a.trajectory.points.size(), b.trajectory.points.size());
  for (size_t i = 0; i < a.trajectory.points.size(); ++i) {
    EXPECT_EQ(a.trajectory.points[i].pos.lat, b.trajectory.points[i].pos.lat);
    EXPECT_EQ(a.trajectory.points[i].pos.lng, b.trajectory.points[i].pos.lng);
    EXPECT_EQ(a.trajectory.points[i].time, b.trajectory.points[i].time);
  }
  EXPECT_EQ(a.stats.segments, b.stats.segments);
  EXPECT_EQ(a.stats.failed_segments, b.stats.failed_segments);
  EXPECT_EQ(a.stats.no_model_segments, b.stats.no_model_segments);
  EXPECT_EQ(a.stats.deadline_segments, b.stats.deadline_segments);
  EXPECT_EQ(a.stats.overload_segments, b.stats.overload_segments);
  EXPECT_EQ(a.stats.full_model_segments, b.stats.full_model_segments);
  EXPECT_EQ(a.stats.ancestor_segments, b.stats.ancestor_segments);
  EXPECT_EQ(a.stats.bert_calls, b.stats.bert_calls);
  ASSERT_EQ(a.stats.outcomes.size(), b.stats.outcomes.size());
  for (size_t i = 0; i < a.stats.outcomes.size(); ++i) {
    EXPECT_EQ(a.stats.outcomes[i].s_time, b.stats.outcomes[i].s_time);
    EXPECT_EQ(a.stats.outcomes[i].d_time, b.stats.outcomes[i].d_time);
    EXPECT_EQ(a.stats.outcomes[i].failed, b.stats.outcomes[i].failed);
  }
}

class ShardTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec()));
    Kamel system(ShardKamelOptions());
    ASSERT_TRUE(system.Train(scenario_->train).ok());
    snapshot_path_ =
        new std::string(testing::TempDir() + "/kamel_shard_snapshot.bin");
    ASSERT_TRUE(system.SaveToFile(*snapshot_path_).ok());
    Result<std::shared_ptr<const KamelSnapshot>> snapshot = system.Snapshot();
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = new std::shared_ptr<const KamelSnapshot>(*snapshot);
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete snapshot_path_;
    delete scenario_;
    snapshot_ = nullptr;
    snapshot_path_ = nullptr;
    scenario_ = nullptr;
  }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  static Trajectory SparseTest(size_t i) {
    return Sparsify(scenario_->test.trajectories[i], 400.0);
  }

  // Starts one worker of a `num_shards` fleet; `port` 0 picks freely.
  static std::unique_ptr<ShardWorker> StartWorker(int shard, int num_shards,
                                                  uint16_t port = 0) {
    WorkerOptions options;
    options.port = port;
    options.shard = shard;
    options.num_shards = num_shards;
    options.kamel = ShardKamelOptions();
    auto worker = std::make_unique<ShardWorker>(options);
    const Status started = worker->Start(*snapshot_path_);
    EXPECT_TRUE(started.ok()) << started.ToString();
    if (!started.ok()) return nullptr;
    return worker;
  }

  static std::vector<ShardEndpoint> Endpoints(
      const std::vector<const ShardWorker*>& workers) {
    std::vector<ShardEndpoint> endpoints;
    for (const ShardWorker* worker : workers) {
      endpoints.push_back({"127.0.0.1", worker->port()});
    }
    return endpoints;
  }

  // Generous per-call budget: the CI host is single-core, so a gap group
  // behind another test's worker can take a while without being "stuck".
  static RouterOptions PatientRouterOptions() {
    RouterOptions options;
    options.call_deadline_s = 30.0;
    return options;
  }

  static bool WaitForHealth(const ShardRouter& router, int shard,
                            HealthState want, double timeout_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (router.ShardHealth()[shard] == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return router.ShardHealth()[shard] == want;
  }

  static SimScenario* scenario_;
  static std::string* snapshot_path_;
  static std::shared_ptr<const KamelSnapshot>* snapshot_;
};

SimScenario* ShardTest::scenario_ = nullptr;
std::string* ShardTest::snapshot_path_ = nullptr;
std::shared_ptr<const KamelSnapshot>* ShardTest::snapshot_ = nullptr;

TEST_F(ShardTest, WorkerServesWireProtocol) {
  std::unique_ptr<ShardWorker> worker = StartWorker(0, 1);
  ASSERT_NE(worker, nullptr);
  // A single-shard fleet partitions at the root and prunes nothing.
  EXPECT_EQ(worker->partition().level, 0);
  EXPECT_EQ(worker->models_dropped(), 0);

  net::RpcClient client("127.0.0.1", worker->port());
  Result<std::vector<uint8_t>> pong =
      client.Call(shard::kMethodPing, std::vector<uint8_t>());
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->empty());

  Result<std::vector<uint8_t>> body =
      client.Call(shard::kMethodStats, std::vector<uint8_t>(), 10.0);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  Result<shard::ShardStatus> status = shard::DecodeStatus(*body);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status->shard, 0);
  EXPECT_EQ(status->health, HealthState::kServing);
  EXPECT_NE(status->json.find("\"health\":\"SERVING\""), std::string::npos);
  EXPECT_NE(status->json.find("\"admitted\""), std::string::npos);

  // Garbage bodies come back as a decode Status, not a dead connection.
  Result<std::vector<uint8_t>> bad =
      client.Call(shard::kMethodImputeGaps, std::vector<uint8_t>{1, 2, 3});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIOError);
}

TEST_F(ShardTest, RouterMatchesSingleProcessWhenHealthy) {
  std::unique_ptr<ShardWorker> w0 = StartWorker(0, 2);
  std::unique_ptr<ShardWorker> w1 = StartWorker(1, 2);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);

  ShardRouter router(*snapshot_, Endpoints({w0.get(), w1.get()}),
                     PatientRouterOptions());
  EXPECT_EQ(router.num_shards(), 2);
  ASSERT_TRUE(router.WaitHealthy(30.0).ok());

  for (size_t i = 0; i < 6 && i < scenario_->test.trajectories.size(); ++i) {
    const Trajectory sparse = SparseTest(i);
    Result<ImputedTrajectory> direct = (*snapshot_)->Impute(sparse);
    Result<ImputedTrajectory> routed = router.Impute(sparse);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ExpectSameImputation(*direct, *routed);
  }

  const shard::RouterStats stats = router.stats();
  EXPECT_GT(stats.imputations, 0);
  EXPECT_GT(stats.remote_calls, 0);
  EXPECT_EQ(stats.linear_fallback_gaps, 0);
  EXPECT_EQ(stats.failovers, 0);
}

TEST_F(ShardTest, KillFailoverRestartRecover) {
  std::unique_ptr<ShardWorker> w0 = StartWorker(0, 2);
  std::unique_ptr<ShardWorker> w1 = StartWorker(1, 2);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);
  const uint16_t port0 = w0->port();

  ShardRouter router(*snapshot_, Endpoints({w0.get(), w1.get()}),
                     PatientRouterOptions());
  ASSERT_TRUE(router.WaitHealthy(30.0).ok());

  // Several trajectories so the sample provably has gaps owned by the
  // shard we are about to kill (asserted below, not assumed).
  constexpr size_t kTrajectories = 4;
  const Pyramid& pyramid = (*snapshot_)->repository().pyramid();
  int victim_gaps = 0;
  std::vector<ImputedTrajectory> baseline;
  for (size_t i = 0; i < kTrajectories; ++i) {
    const Trajectory sparse = SparseTest(i);
    Result<ImputePlan> plan = (*snapshot_)->PlanImpute(sparse);
    ASSERT_TRUE(plan.ok());
    for (const GapPlanEntry& gap : plan->gaps) {
      if (ShardOfGap(router.partition(), pyramid, gap.context) == 0) {
        ++victim_gaps;
      }
    }
    Result<ImputedTrajectory> routed = router.Impute(sparse);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    baseline.push_back(*routed);
  }
  ASSERT_GT(victim_gaps, 0) << "fixture routes no gap to shard 0";

  // Kill shard 0 the hard way (connections die mid-fleet).
  w0.reset();

  // The router keeps answering: owned gaps fail over to the surviving
  // shard (which replicates the coarse ancestors) or take the router-
  // local linear rung — never an error.
  for (size_t i = 0; i < kTrajectories; ++i) {
    Result<ImputedTrajectory> degraded = router.Impute(SparseTest(i));
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  }
  const shard::RouterStats mid = router.stats();
  EXPECT_GT(mid.failovers + mid.linear_fallback_gaps, 0);

  // The prober marks the dead shard down.
  EXPECT_TRUE(WaitForHealth(router, 0, HealthState::kDraining, 10.0));

  // Restart on the same advertised port (SO_REUSEADDR makes the re-bind
  // immediate); the fleet heals and results are byte-identical again.
  w0 = StartWorker(0, 2, port0);
  ASSERT_NE(w0, nullptr);
  ASSERT_TRUE(router.WaitHealthy(30.0).ok());
  for (size_t i = 0; i < kTrajectories; ++i) {
    Result<ImputedTrajectory> recovered = router.Impute(SparseTest(i));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ExpectSameImputation(baseline[i], *recovered);
  }
}

TEST_F(ShardTest, HedgingFiresOnInjectedStraggler) {
  std::unique_ptr<ShardWorker> w0 = StartWorker(0, 2);
  std::unique_ptr<ShardWorker> w1 = StartWorker(1, 2);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);

  // Long probe interval: the initial (fast) probes seed the latency
  // window, then the prober stays out of the way of the failpoint.
  RouterOptions options = PatientRouterOptions();
  options.probe_interval_s = 60.0;
  ShardRouter router(*snapshot_, Endpoints({w0.get(), w1.get()}), options);
  ASSERT_TRUE(router.WaitHealthy(30.0).ok());

  // Every receive now sleeps past the hedge budget, so the primary call
  // looks like a straggler and a second connection races it.
  FaultInjector::Instance().Arm("net.recv.delay", /*skip=*/0, /*count=*/-1);
  Result<ImputedTrajectory> routed = router.Impute(SparseTest(0));
  FaultInjector::Instance().Disarm("net.recv.delay");
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();

  const shard::RouterStats stats = router.stats();
  EXPECT_GT(stats.hedges, 0);
  // The delay slows both attempts equally but breaks neither, so the
  // result is still the healthy-fleet result.
  Result<ImputedTrajectory> direct = (*snapshot_)->Impute(SparseTest(0));
  ASSERT_TRUE(direct.ok());
  ExpectSameImputation(*direct, *routed);
}

TEST_F(ShardTest, CollectStatsAndBroadcastSnapshot) {
  std::unique_ptr<ShardWorker> w0 = StartWorker(0, 2);
  std::unique_ptr<ShardWorker> w1 = StartWorker(1, 2);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);

  ShardRouter router(*snapshot_, Endpoints({w0.get(), w1.get()}),
                     PatientRouterOptions());
  ASSERT_TRUE(router.WaitHealthy(30.0).ok());

  std::vector<ShardRouter::ProbedStatus> probed = router.CollectStats();
  ASSERT_EQ(probed.size(), 2u);
  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE(probed[s].reachable) << probed[s].error;
    EXPECT_EQ(probed[s].status.shard, s);
    EXPECT_EQ(probed[s].status.health, HealthState::kServing);
    EXPECT_NE(probed[s].status.json.find("\"health\":\"SERVING\""),
              std::string::npos);
  }

  // A broken path propagates the workers' load error...
  EXPECT_FALSE(
      router.BroadcastSnapshot(testing::TempDir() + "/kamel_no_such.bin")
          .ok());
  // ...and a good one hot-swaps every worker without changing results.
  ASSERT_TRUE(router.BroadcastSnapshot(*snapshot_path_).ok());
  Result<ImputedTrajectory> direct = (*snapshot_)->Impute(SparseTest(0));
  Result<ImputedTrajectory> routed = router.Impute(SparseTest(0));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ExpectSameImputation(*direct, *routed);

  // Kill one worker: CollectStats reports it unreachable in place.
  w1.reset();
  probed = router.CollectStats();
  ASSERT_EQ(probed.size(), 2u);
  EXPECT_TRUE(probed[0].reachable);
  EXPECT_FALSE(probed[1].reachable);
  EXPECT_FALSE(probed[1].error.empty());
}

}  // namespace
}  // namespace kamel
