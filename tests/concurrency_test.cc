// Concurrency tests for the serving split: many threads hammering one
// immutable KamelSnapshot, parallel ImputeBatch determinism, concurrent
// streaming pushes, and snapshot persistence during serving. Labeled
// "concurrency" so the TSan build can run exactly these:
//   cmake -DKAMEL_SANITIZE=thread ... && ctest -L concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

KamelOptions MiniKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 100;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.encoder.dropout = 0.1;
  options.bert.train.steps = 300;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

// Exact (bitwise) equality of two imputation results: the acceptance bar
// for thread-count independence is byte-identical trajectories.
void ExpectIdentical(const ImputedTrajectory& a, const ImputedTrajectory& b) {
  EXPECT_EQ(a.trajectory.id, b.trajectory.id);
  ASSERT_EQ(a.trajectory.points.size(), b.trajectory.points.size());
  for (size_t i = 0; i < a.trajectory.points.size(); ++i) {
    EXPECT_EQ(a.trajectory.points[i].pos.lat, b.trajectory.points[i].pos.lat);
    EXPECT_EQ(a.trajectory.points[i].pos.lng, b.trajectory.points[i].pos.lng);
    EXPECT_EQ(a.trajectory.points[i].time, b.trajectory.points[i].time);
  }
  EXPECT_EQ(a.stats.segments, b.stats.segments);
  EXPECT_EQ(a.stats.failed_segments, b.stats.failed_segments);
  EXPECT_EQ(a.stats.no_model_segments, b.stats.no_model_segments);
  EXPECT_EQ(a.stats.bert_calls, b.stats.bert_calls);
}

// One trained system shared by every test in this file.
class ConcurrencyTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec()));
    Kamel system(MiniKamelOptions());
    ASSERT_TRUE(system.Train(scenario_->train).ok());
    auto snapshot = system.Snapshot();
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = new std::shared_ptr<const KamelSnapshot>(*snapshot);
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete scenario_;
    snapshot_ = nullptr;
    scenario_ = nullptr;
  }

  static Trajectory SparseTest(size_t i) {
    return Sparsify(scenario_->test.trajectories[i], 400.0);
  }

  static TrajectoryDataset SparseBatch(size_t n) {
    TrajectoryDataset batch;
    for (size_t i = 0; i < n && i < scenario_->test.trajectories.size();
         ++i) {
      batch.trajectories.push_back(SparseTest(i));
    }
    return batch;
  }

  static SimScenario* scenario_;
  static std::shared_ptr<const KamelSnapshot>* snapshot_;
};

SimScenario* ConcurrencyTest::scenario_ = nullptr;
std::shared_ptr<const KamelSnapshot>* ConcurrencyTest::snapshot_ = nullptr;

// Regression for a race in FaultInjector::Hit: the hit-count update and
// the armed-state check used to be separable from a concurrent Reset(),
// so a hit could land against the post-Reset epoch and surface as a
// nonzero HitCount on a freshly reset injector. Both must now happen in
// one critical section; TSan (this file's sanitizer leg) checks the
// synchronization and the final assertion checks the epoch invariant.
TEST(FaultInjectorTest, ConcurrentHitAndResetKeepEpochsSeparate) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Reset();
  constexpr int kHitters = 4;
  constexpr int kRounds = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> hitters;
  hitters.reserve(kHitters);
  for (int t = 0; t < kHitters; ++t) {
    hitters.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)injector.Hit("race.point");
        (void)injector.HitCount("race.point");
      }
    });
  }
  for (int round = 0; round < kRounds; ++round) {
    injector.Arm("race.point", 0, /*count=*/-1);
    injector.Reset();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& hitter : hitters) hitter.join();
  // The loop's last operation was Reset(): every hit counted before it
  // was cleared by it, and every hit completing after it observes the
  // disarmed epoch under the lock and is not counted. A nonzero count
  // here is exactly the original bug — a racing hit recorded against
  // the post-Reset epoch.
  EXPECT_EQ(injector.HitCount("race.point"), 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.Hit("race.point").ok());  // disarmed: passes,
  }
  EXPECT_EQ(injector.HitCount("race.point"), 0);   // and uncounted
  injector.Reset();
}

TEST(ThreadPoolTest, RunsEverythingAndDrainsOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 500; ++i) {
      pool.Schedule([&done] { done.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(done.load(), 500);
}

TEST(ThreadPoolTest, SubmitDeliversValuesThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST_F(ConcurrencyTest, SharedSnapshotImputeIsThreadSafeAndDeterministic) {
  const KamelSnapshot& snapshot = **snapshot_;
  const int kThreads = 8;
  const TrajectoryDataset batch = SparseBatch(4);

  // Single-threaded reference results.
  std::vector<ImputedTrajectory> reference;
  for (const Trajectory& t : batch.trajectories) {
    auto result = snapshot.Impute(t);
    ASSERT_TRUE(result.ok());
    reference.push_back(std::move(*result));
  }

  // N threads hammer the same snapshot with the same inputs.
  std::vector<std::vector<ImputedTrajectory>> per_thread(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const Trajectory& trajectory : batch.trajectories) {
        auto result = snapshot.Impute(trajectory);
        if (!result.ok()) {
          failures.fetch_add(1);
          return;
        }
        per_thread[static_cast<size_t>(t)].push_back(std::move(*result));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[static_cast<size_t>(t)].size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectIdentical(per_thread[static_cast<size_t>(t)][i], reference[i]);
    }
  }
}

TEST_F(ConcurrencyTest, ImputeBatchIdenticalAcrossThreadCounts) {
  const TrajectoryDataset batch = SparseBatch(6);

  ServingEngine one(*snapshot_, {.num_threads = 1});
  ServingEngine eight(*snapshot_, {.num_threads = 8});
  auto serial = one.ImputeBatch(batch);
  auto parallel = eight.ImputeBatch(batch);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), batch.trajectories.size());
  ASSERT_EQ(parallel->size(), batch.trajectories.size());
  for (size_t i = 0; i < serial->size(); ++i) {
    ExpectIdentical((*serial)[i], (*parallel)[i]);
  }

  // Aggregation is positional, so the batch totals match too (seconds is
  // wall time and excluded from the determinism contract).
  const ImputeStats a = AggregateBatchStats(*serial);
  const ImputeStats b = AggregateBatchStats(*parallel);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.failed_segments, b.failed_segments);
  EXPECT_EQ(a.bert_calls, b.bert_calls);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].s_time, b.outcomes[i].s_time);
    EXPECT_EQ(a.outcomes[i].failed, b.outcomes[i].failed);
  }
}

TEST_F(ConcurrencyTest, ImputeAsyncDeliversSameResultAsInline) {
  ServingEngine engine(*snapshot_, {.num_threads = 2});
  const Trajectory sparse = SparseTest(2);
  auto inline_result = engine.Impute(sparse);
  auto async_result = engine.ImputeAsync(sparse).get();
  ASSERT_TRUE(inline_result.ok());
  ASSERT_TRUE(async_result.ok());
  ExpectIdentical(*inline_result, *async_result);
}

TEST_F(ConcurrencyTest, ConcurrentStreamingPushesAllTripsDelivered) {
  ServingEngine engine(*snapshot_, {.num_threads = 4});
  std::atomic<int> delivered{0};
  std::atomic<int> errors{0};

  class CountingSink final : public ImputedSink {
   public:
    CountingSink(std::atomic<int>* delivered, std::atomic<int>* errors)
        : delivered_(delivered), errors_(errors) {}
    void OnImputed(int64_t, ImputedTrajectory) override {
      delivered_->fetch_add(1);
    }
    void OnImputeError(int64_t, const Status&) override {
      errors_->fetch_add(1);
    }

   private:
    std::atomic<int>* delivered_;
    std::atomic<int>* errors_;
  };
  CountingSink sink(&delivered, &errors);
  StreamingSession session(&engine, &sink);

  // 4 feeder threads, each driving 2 distinct vehicles end to end.
  const int kFeeders = 4;
  const int kVehiclesPerFeeder = 2;
  std::atomic<int> push_failures{0};
  std::vector<std::thread> feeders;
  feeders.reserve(kFeeders);
  for (int f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      for (int v = 0; v < kVehiclesPerFeeder; ++v) {
        const int64_t id = f * kVehiclesPerFeeder + v;
        const Trajectory sparse =
            SparseTest(static_cast<size_t>(id) %
                       scenario_->test.trajectories.size());
        for (const TrajPoint& point : sparse.points) {
          if (!session.Push(id, point).ok()) {
            push_failures.fetch_add(1);
            return;
          }
        }
        if (!session.EndTrajectory(id).ok()) push_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& feeder : feeders) feeder.join();
  session.Drain();
  EXPECT_EQ(push_failures.load(), 0);
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(delivered.load(), kFeeders * kVehiclesPerFeeder);
  EXPECT_EQ(session.open_trajectories(), 0u);
}

TEST_F(ConcurrencyTest, SnapshotSavesConsistentlyDuringServing) {
  const std::string path =
      testing::TempDir() + "/concurrent_snapshot_save.bin";
  const KamelSnapshot& snapshot = **snapshot_;
  const Trajectory sparse = SparseTest(1);

  // Serving threads hammer Impute while the main thread saves.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> servers;
  for (int t = 0; t < 4; ++t) {
    servers.emplace_back([&] {
      while (!stop.load()) {
        if (!snapshot.Impute(sparse).ok()) failures.fetch_add(1);
      }
    });
  }
  const Status saved = snapshot.SaveToFile(path);
  stop.store(true);
  for (std::thread& server : servers) server.join();
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  ASSERT_EQ(failures.load(), 0);

  // The file written mid-serving loads clean and serves identically.
  auto fsck = FsckSnapshot(path);
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->clean());
  Kamel restored(MiniKamelOptions());
  LoadReport report;
  ASSERT_TRUE(restored.LoadFromFile(path, &report).ok());
  EXPECT_FALSE(report.partial());
  auto reference = snapshot.Impute(sparse);
  auto reloaded = restored.Impute(sparse);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reloaded.ok());
  ExpectIdentical(*reference, *reloaded);
}

// impute_deadline_seconds must compose with --threads N: the deadline is
// per-Impute-call wall clock, so with a deadline that expires immediately
// every segment deterministically takes the linear path no matter how
// many pool threads carve up the batch — deadline_segments aggregates to
// the same total and the output bytes are identical.
TEST_F(ConcurrencyTest, ImputeDeadlineDeterministicAcrossThreadCounts) {
  const std::string path =
      testing::TempDir() + "/concurrency_deadline_snapshot.bin";
  ASSERT_TRUE((*snapshot_)->SaveToFile(path).ok());
  KamelOptions options = MiniKamelOptions();
  options.impute_deadline_seconds = 1e-12;  // expires immediately
  Kamel restored(options);
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  auto snapshot = restored.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  const TrajectoryDataset batch = SparseBatch(6);
  ServingEngine one(*snapshot, {.num_threads = 1});
  ServingEngine eight(*snapshot, {.num_threads = 8});
  auto serial = one.ImputeBatch(batch);
  auto parallel = eight.ImputeBatch(batch);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), batch.trajectories.size());
  for (size_t i = 0; i < serial->size(); ++i) {
    ExpectIdentical((*serial)[i], (*parallel)[i]);
    EXPECT_EQ((*serial)[i].stats.deadline_segments,
              (*parallel)[i].stats.deadline_segments);
  }
  const ImputeStats a = AggregateBatchStats(*serial);
  const ImputeStats b = AggregateBatchStats(*parallel);
  EXPECT_EQ(a.deadline_segments, b.deadline_segments);
  EXPECT_EQ(a.deadline_segments, a.segments);  // everything expired
  EXPECT_GT(a.segments, 0);
  EXPECT_EQ(a.failed_segments, a.segments);
  EXPECT_EQ(a.bert_calls, 0);
  // The ladder never engaged: deadline expiry skips model selection.
  EXPECT_EQ(a.full_model_segments, 0);
  EXPECT_EQ(a.ancestor_segments, 0);
  EXPECT_EQ(a.overload_segments, 0);
}

TEST_F(ConcurrencyTest, UpdateSnapshotSwapsWithoutDisruption) {
  ServingEngine engine(*snapshot_, {.num_threads = 2});
  const Trajectory sparse = SparseTest(0);
  auto before = engine.Impute(sparse);
  ASSERT_TRUE(before.ok());

  // Swap in the same snapshot object under concurrent imputations: the
  // swap itself must be race-free and results unchanged.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread swapper([&] {
    while (!stop.load()) engine.UpdateSnapshot(*snapshot_);
  });
  for (int i = 0; i < 20; ++i) {
    auto during = engine.Impute(sparse);
    if (!during.ok()) {
      failures.fetch_add(1);
      continue;
    }
    ExpectIdentical(*before, *during);
  }
  stop.store(true);
  swapper.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace kamel
