// Evaluation harness tests: the paper's recall/precision discretization
// metrics, the evaluator's segment slicing, road-type classification, and
// failure-rate joins.
#include <gtest/gtest.h>

#include "baselines/linear.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/scenario.h"
#include "sim/datasets.h"

namespace kamel {
namespace {

TEST(MetricsTest, PerfectImputationScoresOne) {
  const std::vector<Vec2> truth = {{0, 0}, {1000, 0}};
  EXPECT_EQ(RecallCount(truth, truth, 100.0, 10.0).Ratio(), 1.0);
  EXPECT_EQ(PrecisionCount(truth, truth, 100.0, 10.0).Ratio(), 1.0);
}

TEST(MetricsTest, OffsetBeyondDeltaScoresZero) {
  const std::vector<Vec2> truth = {{0, 0}, {1000, 0}};
  const std::vector<Vec2> imputed = {{0, 100}, {1000, 100}};
  EXPECT_EQ(RecallCount(truth, imputed, 100.0, 50.0).Ratio(), 0.0);
  EXPECT_EQ(RecallCount(truth, imputed, 100.0, 100.0).Ratio(), 1.0);
}

TEST(MetricsTest, PartialCoverageIsFractional) {
  // Imputed covers only the first half of the truth.
  const std::vector<Vec2> truth = {{0, 0}, {1000, 0}};
  const std::vector<Vec2> imputed = {{0, 0}, {500, 0}};
  const RatioCount recall = RecallCount(truth, imputed, 100.0, 25.0);
  EXPECT_NEAR(recall.Ratio(), 0.55, 0.1);  // ~6 of 11 samples
  // Precision of the half-line against the full truth stays perfect.
  EXPECT_EQ(PrecisionCount(imputed, truth, 100.0, 25.0).Ratio(), 1.0);
}

TEST(MetricsTest, RecallDetectsCutCorners) {
  // Truth goes around an L; a straight-line imputation misses the corner.
  const std::vector<Vec2> truth = {{0, 0}, {1000, 0}, {1000, 1000}};
  const std::vector<Vec2> diagonal = {{0, 0}, {1000, 1000}};
  const double recall = RecallCount(truth, diagonal, 100.0, 50.0).Ratio();
  EXPECT_LT(recall, 0.35);
  const double precision =
      PrecisionCount(diagonal, truth, 100.0, 50.0).Ratio();
  EXPECT_LT(precision, 0.35);
}

TEST(MetricsTest, EmptyInputs) {
  EXPECT_EQ(RecallCount({}, {{0, 0}}, 100.0, 50.0).total, 0);
  const RatioCount recall = RecallCount({{0, 0}, {200, 0}}, {}, 100.0, 50.0);
  EXPECT_GT(recall.total, 0);
  EXPECT_EQ(recall.hits, 0);
}

TEST(RatioCountTest, Accumulation) {
  RatioCount a{3, 10};
  const RatioCount b{2, 10};
  a.Accumulate(b);
  EXPECT_EQ(a.hits, 5);
  EXPECT_EQ(a.total, 20);
  EXPECT_DOUBLE_EQ(a.Ratio(), 0.25);
  EXPECT_EQ(RatioCount{}.Ratio(), 0.0);
}

class EvaluatorTest : public testing::Test {
 protected:
  EvaluatorTest() : projection_({45.0, -93.0}) {}

  // A dense trajectory along an L (east then north), 50 m / 5 s steps.
  Trajectory LTrajectory() const {
    Trajectory t;
    double time = 0.0;
    for (double x = 0.0; x <= 1000.0; x += 50.0) {
      t.points.push_back({projection_.Unproject({x, 0.0}), time});
      time += 5.0;
    }
    for (double y = 50.0; y <= 1000.0; y += 50.0) {
      t.points.push_back({projection_.Unproject({1000.0, y}), time});
      time += 5.0;
    }
    return t;
  }

  LocalProjection projection_;
};

TEST_F(EvaluatorTest, LinearBaselineScoresMatchExpectations) {
  Evaluator evaluator(&projection_);
  LinearInterpolation linear(100.0);
  TrajectoryDataset test;
  test.trajectories.push_back(LTrajectory());
  auto run = evaluator.RunMethod(&linear, test, 800.0);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->trajectories, 1);

  ScoreConfig score;
  score.delta_m = 50.0;
  const EvalResult result = evaluator.Score(*run, score);
  // Straight fills cut the corner: recall well below 1 but above 0.
  EXPECT_GT(result.recall, 0.2);
  EXPECT_LT(result.recall, 0.95);
  EXPECT_EQ(result.failure_rate, 1.0);
  EXPECT_GT(result.segments, 0);

  // A huge delta forgives everything.
  score.delta_m = 2000.0;
  EXPECT_EQ(evaluator.Score(*run, score).recall, 1.0);
}

TEST_F(EvaluatorTest, RoadTypeClassificationSplitsSegments) {
  Evaluator evaluator(&projection_);
  LinearInterpolation linear(100.0);
  TrajectoryDataset test;
  test.trajectories.push_back(LTrajectory());
  // Sparsity 1200 m: the first segment wraps the corner (curved); the
  // second lies on the north leg (straight).
  auto run = evaluator.RunMethod(&linear, test, 1200.0);
  ASSERT_TRUE(run.ok());

  ScoreConfig straight;
  straight.delta_m = 50.0;
  straight.segment_class = SegmentClass::kStraight;
  ScoreConfig curved = straight;
  curved.segment_class = SegmentClass::kCurved;
  const EvalResult straight_result = evaluator.Score(*run, straight);
  const EvalResult curved_result = evaluator.Score(*run, curved);

  // Both classes must be present, and linear interpolation is perfect on
  // straight segments but poor on the corner.
  EXPECT_GT(straight_result.segments + curved_result.segments, 0);
  EXPECT_GT(curved_result.segments, 0);
  EXPECT_GT(straight_result.recall, 0.95);
  EXPECT_LT(curved_result.recall, 0.8);

  // The two classes partition the overall sample counts.
  ScoreConfig all;
  all.delta_m = 50.0;
  const EvalResult all_result = evaluator.Score(*run, all);
  EXPECT_EQ(all_result.segments,
            straight_result.segments + curved_result.segments);
}

TEST_F(EvaluatorTest, TimingIsAggregated) {
  Evaluator evaluator(&projection_);
  LinearInterpolation linear(100.0);
  TrajectoryDataset test;
  test.trajectories.push_back(LTrajectory());
  test.trajectories.push_back(LTrajectory());
  auto run = evaluator.RunMethod(&linear, test, 500.0);
  ASSERT_TRUE(run.ok());
  const EvalResult result = evaluator.Score(*run, ScoreConfig{});
  EXPECT_GE(result.impute_seconds, 0.0);
  EXPECT_GE(result.avg_impute_seconds_per_trajectory, 0.0);
}

TEST(ScenarioCacheKeyTest, SensitiveToTrainingOptionsOnly) {
  const ScenarioSpec spec = MiniSpec();
  const KamelOptions base = BenchKamelOptions();

  // Imputation-time knobs do not change the key (ablations reuse cache).
  KamelOptions beam = base;
  beam.beam_size = 99;
  beam.enable_constraints = false;
  beam.enable_multipoint = false;
  EXPECT_EQ(TrainingCacheKey(spec, base), TrainingCacheKey(spec, beam));

  // Training-relevant knobs do.
  KamelOptions grid = base;
  grid.grid_type = GridType::kSquare;
  EXPECT_NE(TrainingCacheKey(spec, base), TrainingCacheKey(spec, grid));
  KamelOptions steps = base;
  steps.bert.train.steps += 1;
  EXPECT_NE(TrainingCacheKey(spec, base), TrainingCacheKey(spec, steps));
  KamelOptions part = base;
  part.enable_partitioning = false;
  EXPECT_NE(TrainingCacheKey(spec, base), TrainingCacheKey(spec, part));

  // Different scenarios and variants differ.
  ScenarioSpec other = MiniSpec(99);
  other.network.seed = 999;
  EXPECT_NE(TrainingCacheKey(spec, base), TrainingCacheKey(other, base));
  BenchVariant subsample;
  subsample.train_subsample = 0.5;
  EXPECT_NE(TrainingCacheKey(spec, base),
            TrainingCacheKey(spec, base, subsample));
}

}  // namespace
}  // namespace kamel
