// Trajectory CSV / GeoJSON interchange tests.
#include <gtest/gtest.h>

#include "io/trajectory_csv.h"

namespace kamel {
namespace {

TrajectoryDataset SampleData() {
  TrajectoryDataset data;
  Trajectory a;
  a.id = 7;
  a.points = {{{41.15, -8.61}, 0.0}, {{41.151, -8.612}, 15.0}};
  Trajectory b;
  b.id = 9;
  b.points = {{{41.2, -8.6}, 3.5}};
  data.trajectories = {a, b};
  return data;
}

TEST(TrajectoryCsvTest, RoundTripPreservesEverything) {
  const TrajectoryDataset data = SampleData();
  auto parsed = io::ReadCsvString(io::WriteCsvString(data));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->trajectories.size(), 2u);
  EXPECT_EQ(parsed->trajectories[0].id, 7);
  EXPECT_EQ(parsed->trajectories[1].id, 9);
  ASSERT_EQ(parsed->trajectories[0].points.size(), 2u);
  EXPECT_NEAR(parsed->trajectories[0].points[1].pos.lat, 41.151, 1e-7);
  EXPECT_NEAR(parsed->trajectories[0].points[1].pos.lng, -8.612, 1e-7);
  EXPECT_NEAR(parsed->trajectories[0].points[1].time, 15.0, 1e-3);
}

TEST(TrajectoryCsvTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/kamel_io_test.csv";
  ASSERT_TRUE(io::WriteCsvFile(SampleData(), path).ok());
  auto parsed = io::ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trajectories.size(), 2u);
}

TEST(TrajectoryCsvTest, SkipsCommentsAndBlankLines) {
  const std::string text =
      "trajectory_id,lat,lng,time\n"
      "# a comment\n"
      "\n"
      "1,41.0,-8.0,0\n"
      "1,41.001,-8.0,10\n";
  auto parsed = io::ReadCsvString(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->trajectories.size(), 1u);
  EXPECT_EQ(parsed->trajectories[0].points.size(), 2u);
}

TEST(TrajectoryCsvTest, RejectsMissingHeader) {
  EXPECT_FALSE(io::ReadCsvString("1,41.0,-8.0,0\n").ok());
  EXPECT_FALSE(io::ReadCsvString("").ok());
}

TEST(TrajectoryCsvTest, RejectsMalformedRows) {
  const std::string header = "trajectory_id,lat,lng,time\n";
  EXPECT_FALSE(io::ReadCsvString(header + "1,41.0,-8.0\n").ok());
  EXPECT_FALSE(io::ReadCsvString(header + "1,abc,-8.0,0\n").ok());
  EXPECT_FALSE(io::ReadCsvString(header + "1,141.0,-8.0,0\n").ok());
  EXPECT_FALSE(io::ReadCsvString(header + "1,41.0,-481.0,0\n").ok());
}

TEST(TrajectoryCsvTest, RejectsNonFiniteValues) {
  // strtod accepts these spellings; the reader must not (NaN coordinates
  // would sail through every later range check).
  const std::string header = "trajectory_id,lat,lng,time\n";
  for (const char* row :
       {"1,nan,-8.0,0\n", "1,41.0,inf,0\n", "1,41.0,-8.0,-inf\n",
        "nan,41.0,-8.0,0\n"}) {
    auto parsed = io::ReadCsvString(header + row);
    ASSERT_FALSE(parsed.ok()) << row;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << row;
    EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
        << row;
  }
}

TEST(TrajectoryCsvTest, RejectsNonContiguousTrajectories) {
  const std::string text =
      "trajectory_id,lat,lng,time\n"
      "1,41.0,-8.0,0\n"
      "2,41.0,-8.0,0\n"
      "1,41.1,-8.0,10\n";
  EXPECT_FALSE(io::ReadCsvString(text).ok());
}

TEST(TrajectoryCsvTest, RejectsTimeTravel) {
  const std::string text =
      "trajectory_id,lat,lng,time\n"
      "1,41.0,-8.0,10\n"
      "1,41.1,-8.0,5\n";
  EXPECT_FALSE(io::ReadCsvString(text).ok());
}

TEST(TrajectoryCsvTest, MissingFileFails) {
  EXPECT_FALSE(io::ReadCsvFile("/no/such/kamel.csv").ok());
}

TEST(GeoJsonTest, ProducesFeaturePerTrajectory) {
  const std::string geojson = io::WriteGeoJsonString(SampleData());
  EXPECT_NE(geojson.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(geojson.find("\"id\":7"), std::string::npos);
  EXPECT_NE(geojson.find("\"id\":9"), std::string::npos);
  EXPECT_NE(geojson.find("LineString"), std::string::npos);
  // Coordinates are [lng, lat].
  EXPECT_NE(geojson.find("[-8.6100000,41.1500000]"), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  int depth = 0;
  for (char ch : geojson) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace kamel
