// Replication tests: the WAL chunk stream (TailChunk), the replica-side
// byte applier with its torn-tail recovery (replica.io.* fault sweeps),
// epoch fencing on both ends of the stream — a standby refusing a stale
// primary, a primary self-fencing on proof of a newer epoch — semi-sync
// Submit acks, the new wire codecs, and the router's promotion ladder
// end to end: kill the primary under load, watch the standby get
// promoted with a bumped epoch, resurrect the old primary and watch it
// be refused, then rejoin it as a standby of the new epoch. The binary
// carries "replication" for the CI smoke leg, plus "robustness"
// (ASan/UBSan leg) and "concurrency" (TSan leg): the fleet tests mix
// threads, sockets, and injected faults.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <functional>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/kamel.h"
#include "core/serving_engine.h"
#include "eval/scenario.h"
#include "io/wal.h"
#include "net/rpc.h"
#include "replication/primary.h"
#include "replication/replication.h"
#include "replication/standby.h"
#include "shard/router.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

namespace repl = ::kamel::replication;

using shard::RouterOptions;
using shard::ShardEndpoint;
using shard::ShardRouter;
using shard::ShardWorker;
using shard::WorkerOptions;

std::string MakeTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = testing::TempDir() + "/kamel_repl_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Raw bytes of every wal-*.log segment, keyed by file name — the unit the
// byte-identity assertions compare (EPOCH sidecars are compared where a
// test cares about them, not here).
std::map<std::string, std::vector<uint8_t>> SegmentBytes(
    const std::string& dir) {
  std::map<std::string, std::vector<uint8_t>> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    out[name] = std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }
  return out;
}

std::vector<uint8_t> Blob(int i, size_t size = 64) {
  return std::vector<uint8_t>(size, static_cast<uint8_t>(i));
}

// Polls `pred` every 20ms until it holds or `timeout_s` elapses.
bool WaitFor(const std::function<bool()>& pred, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

WalOptions SmallSegmentOptions(const std::string& dir) {
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 512;  // rotate every handful of records
  return options;
}

class ReplicationTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

// ---------------------------------------------------------------------------
// Epoch sidecar

TEST_F(ReplicationTest, EpochStoreRoundTripsAndFailsAtomically) {
  const std::string dir = MakeTempDir("epoch");
  Result<uint64_t> none = repl::LoadEpoch(dir);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);

  ASSERT_TRUE(repl::StoreEpoch(dir, 7).ok());
  Result<uint64_t> seven = repl::LoadEpoch(dir);
  ASSERT_TRUE(seven.ok());
  EXPECT_EQ(*seven, 7u);

  // A failed store must leave the old epoch readable (atomic rename).
  {
    ScopedIoFault fault("epoch.io.rename", EIO);
    EXPECT_FALSE(repl::StoreEpoch(dir, 9).ok());
  }
  Result<uint64_t> still = repl::LoadEpoch(dir);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(*still, 7u);
}

// ---------------------------------------------------------------------------
// TailChunk: the primary's half of the byte stream

TEST_F(ReplicationTest, TailChunkWalksResetDataRotateAndTruncate) {
  const std::string dir = MakeTempDir("tailchunk");
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(SmallSegmentOptions(dir));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*wal)->Append(WalRecordType::kSubmit, Blob(i)).ok());
  }
  ASSERT_GT((*wal)->segment_count(), 1u) << "test needs a rotation";

  // A fresh replica (position 0/0) is told where history starts.
  Result<WalShipChunk> reset = (*wal)->TailChunk(0, 0, 0);
  ASSERT_TRUE(reset.ok()) << reset.status().ToString();
  ASSERT_EQ(reset->kind, WalShipChunk::Kind::kReset);
  EXPECT_EQ(reset->next_segment_base, 1u);  // first LSN is 1

  // Walk the stream: kData bytes until each closed segment's durable
  // end, kRotate across the boundary, empty kData at the live tip.
  uint64_t base = reset->next_segment_base;
  uint64_t offset = 0;
  int rotations = 0;
  uint64_t data_bytes = 0;
  for (int hops = 0; hops < 1000; ++hops) {
    Result<WalShipChunk> chunk = (*wal)->TailChunk(base, offset, 100);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk->kind == WalShipChunk::Kind::kRotate) {
      base = chunk->next_segment_base;
      offset = 0;
      ++rotations;
      continue;
    }
    ASSERT_EQ(chunk->kind, WalShipChunk::Kind::kData);
    if (chunk->bytes.empty()) break;  // caught up
    offset += chunk->bytes.size();
    data_bytes += chunk->bytes.size();
  }
  EXPECT_EQ(rotations + 1, static_cast<int>((*wal)->segment_count()));
  uint64_t on_disk = 0;
  for (const auto& [name, bytes] : SegmentBytes(dir)) {
    on_disk += bytes.size();
  }
  EXPECT_EQ(data_bytes, on_disk);

  // Claiming more bytes than the primary's durable size is a diverged
  // tail: truncate down to the durable watermark.
  Result<WalShipChunk> truncate = (*wal)->TailChunk(base, offset + 100, 0);
  ASSERT_TRUE(truncate.ok());
  ASSERT_EQ(truncate->kind, WalShipChunk::Kind::kTruncate);
  EXPECT_EQ(truncate->truncate_to, offset);
  EXPECT_EQ(truncate->durable_lsn, 20u);
}

// ---------------------------------------------------------------------------
// WalReplicaApplier: the standby's half

// Pulls `wal`'s stream into `applier` until caught up. Returns false on
// the first Apply failure (the caller decides how to recover).
bool PumpStream(const WriteAheadLog& wal, WalReplicaApplier* applier,
                uint64_t max_bytes = 100) {
  for (int hops = 0; hops < 10000; ++hops) {
    Result<WalShipChunk> chunk =
        wal.TailChunk(applier->segment_base(), applier->offset(), max_bytes);
    if (!chunk.ok()) return false;
    if (chunk->kind == WalShipChunk::Kind::kData && chunk->bytes.empty()) {
      return true;  // caught up
    }
    if (!applier->Apply(*chunk).ok()) return false;
  }
  return false;
}

TEST_F(ReplicationTest, ApplierReconstructsByteIdenticalSegments) {
  const std::string primary_dir = MakeTempDir("applier_p");
  const std::string replica_dir = MakeTempDir("applier_r");
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(SmallSegmentOptions(primary_dir));
  ASSERT_TRUE(wal.ok());
  Result<std::unique_ptr<WalReplicaApplier>> applier =
      WalReplicaApplier::Open(replica_dir);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();

  // Interleave appends and pulls so the stream sees live tips, rotations
  // mid-pull, and catch-up from behind.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(WalRecordType::kSubmit, Blob(round * 8 + i)).ok());
    }
    ASSERT_TRUE(PumpStream(**wal, applier->get()));
  }
  EXPECT_EQ((*applier)->applied_lsn(), (*wal)->durable_lsn());
  EXPECT_EQ(SegmentBytes(replica_dir), SegmentBytes(primary_dir));
}

// The satellite sweep: a replica whose own disk write tears mid-chunk —
// the shape a SIGKILL leaves while the primary keeps shipping — must
// refuse further applies (poisoned), truncate the torn tail on reopen,
// and re-converge to the primary's exact bytes. The skip parameter moves
// the tear across chunk boundaries, segment headers, and record frames.
TEST_F(ReplicationTest, ApplierTornTailSweepTruncatesAndReconverges) {
  for (int skip = 0; skip < 5; ++skip) {
    SCOPED_TRACE("skip=" + std::to_string(skip));
    const std::string primary_dir =
        MakeTempDir("torn_p" + std::to_string(skip));
    const std::string replica_dir =
        MakeTempDir("torn_r" + std::to_string(skip));
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(SmallSegmentOptions(primary_dir));
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE((*wal)->Append(WalRecordType::kSubmit, Blob(i)).ok());
    }

    Result<std::unique_ptr<WalReplicaApplier>> applier =
        WalReplicaApplier::Open(replica_dir);
    ASSERT_TRUE(applier.ok());
    {
      // Half the buffer lands, then EIO: a torn replica tail on disk.
      ScopedIoFault fault("replica.io.write", EIO, skip, 1,
                          /*short_write=*/true);
      EXPECT_FALSE(PumpStream(**wal, applier->get()));
    }
    // The applier knows its file no longer matches its parse state.
    WalShipChunk noop;
    noop.kind = WalShipChunk::Kind::kData;
    noop.segment_base = (*applier)->segment_base();
    noop.offset = (*applier)->offset();
    Status poisoned = (*applier)->Apply(noop);
    EXPECT_EQ(poisoned.code(), StatusCode::kFailedPrecondition)
        << poisoned.ToString();

    // "Restart" the standby: reopen scans local segments, truncates the
    // tear, and the next pulls re-converge byte-identically.
    applier->reset();
    WalReplicaApplier::OpenReport report;
    Result<std::unique_ptr<WalReplicaApplier>> reopened =
        WalReplicaApplier::Open(replica_dir, &report);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_TRUE(PumpStream(**wal, reopened->get()));
    EXPECT_EQ((*reopened)->applied_lsn(), (*wal)->durable_lsn());
    EXPECT_EQ(SegmentBytes(replica_dir), SegmentBytes(primary_dir));
  }
}

// ---------------------------------------------------------------------------
// Wire codecs

TEST_F(ReplicationTest, PullCodecsRoundTrip) {
  repl::PullRequest request;
  request.standby_id = "standby-a";
  request.epoch = 3;
  request.applied_lsn = 41;
  request.segment_base = 17;
  request.offset = 512;
  request.max_bytes = 65536;
  Result<repl::PullRequest> req =
      repl::DecodePullRequest(repl::EncodePullRequest(request));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->standby_id, "standby-a");
  EXPECT_EQ(req->epoch, 3u);
  EXPECT_EQ(req->applied_lsn, 41u);
  EXPECT_EQ(req->segment_base, 17u);
  EXPECT_EQ(req->offset, 512u);
  EXPECT_EQ(req->max_bytes, 65536u);

  repl::PullResponse response;
  response.epoch = 4;
  response.chunk.kind = WalShipChunk::Kind::kRotate;
  response.chunk.segment_base = 17;
  response.chunk.offset = 1024;
  response.chunk.bytes = {1, 2, 3};
  response.chunk.next_segment_base = 99;
  response.chunk.durable_lsn = 55;
  Result<repl::PullResponse> resp =
      repl::DecodePullResponse(repl::EncodePullResponse(response));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->epoch, 4u);
  EXPECT_EQ(resp->chunk.kind, WalShipChunk::Kind::kRotate);
  EXPECT_EQ(resp->chunk.next_segment_base, 99u);
  EXPECT_EQ(resp->chunk.bytes, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(resp->chunk.durable_lsn, 55u);

  // A chunk kind outside 1..4 is corruption, not UB.
  std::vector<uint8_t> body = repl::EncodePullResponse(response);
  body[8] = 9;  // u64 epoch, then the kind byte
  EXPECT_FALSE(repl::DecodePullResponse(body).ok());
}

TEST_F(ReplicationTest, ShardWireCodecsCoverReplicationFields) {
  shard::RoleInfo info;
  info.shard = 2;
  info.role = repl::ReplicaRole::kCatchingUp;
  info.epoch = 6;
  info.durable_lsn = 100;
  info.applied_lsn = 90;
  info.lag = 10;
  info.health = HealthState::kDegraded;
  Result<shard::RoleInfo> role =
      shard::DecodeRoleInfo(shard::EncodeRoleInfo(info));
  ASSERT_TRUE(role.ok()) << role.status().ToString();
  EXPECT_EQ(role->shard, 2);
  EXPECT_EQ(role->role, repl::ReplicaRole::kCatchingUp);
  EXPECT_EQ(role->epoch, 6u);
  EXPECT_EQ(role->lag, 10u);
  EXPECT_EQ(role->health, HealthState::kDegraded);

  shard::SubmitAck ack;
  ack.lsn = 12;
  ack.epoch = 3;
  Result<shard::SubmitAck> decoded_ack =
      shard::DecodeSubmitAck(shard::EncodeSubmitAck(ack));
  ASSERT_TRUE(decoded_ack.ok());
  EXPECT_EQ(decoded_ack->lsn, 12u);
  EXPECT_EQ(decoded_ack->epoch, 3u);

  Result<uint64_t> promote =
      shard::DecodePromoteRequest(shard::EncodePromoteRequest(5));
  ASSERT_TRUE(promote.ok());
  EXPECT_EQ(*promote, 5u);

  shard::PromoteAck promote_ack;
  promote_ack.epoch = 5;
  promote_ack.applied_lsn = 77;
  Result<shard::PromoteAck> decoded_promote =
      shard::DecodePromoteAck(shard::EncodePromoteAck(promote_ack));
  ASSERT_TRUE(decoded_promote.ok());
  EXPECT_EQ(decoded_promote->epoch, 5u);
  EXPECT_EQ(decoded_promote->applied_lsn, 77u);

  shard::ShardStatus status;
  status.shard = 1;
  status.health = HealthState::kServing;
  status.json = "{}";
  status.role = repl::ReplicaRole::kStandby;
  status.epoch = 4;
  status.durable_lsn = 9;
  status.applied_lsn = 9;
  status.replication_lag = 0;
  Result<shard::ShardStatus> decoded_status =
      shard::DecodeStatus(shard::EncodeStatus(status));
  ASSERT_TRUE(decoded_status.ok());
  EXPECT_EQ(decoded_status->role, repl::ReplicaRole::kStandby);
  EXPECT_EQ(decoded_status->epoch, 4u);
}

// ---------------------------------------------------------------------------
// Primary + standby over real sockets (no models involved)

// A primary's replication stack minus the serving engine: WAL +
// PrimaryReplication + an RpcServer speaking only kMethodWalPull.
class MiniPrimary {
 public:
  void Start(const std::string& dir, uint64_t epoch, uint16_t port = 0,
             repl::ReplicationOptions options = {}) {
    ASSERT_TRUE(repl::StoreEpoch(dir, epoch).ok());
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(SmallSegmentOptions(dir));
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    repl_ = std::make_shared<repl::PrimaryReplication>(std::move(*wal),
                                                       epoch, options);
    server_ = std::make_unique<net::RpcServer>("127.0.0.1");
    std::shared_ptr<repl::PrimaryReplication> pinned = repl_;
    server_->Register(
        repl::kMethodWalPull,
        [pinned](const std::vector<uint8_t>& body)
            -> Result<std::vector<uint8_t>> {
          KAMEL_ASSIGN_OR_RETURN(const repl::PullRequest request,
                                 repl::DecodePullRequest(body));
          KAMEL_ASSIGN_OR_RETURN(const repl::PullResponse response,
                                 pinned->HandlePull(request));
          return repl::EncodePullResponse(response);
        });
    ASSERT_TRUE(server_->Start(port).ok());
    port_ = server_->port();
  }

  // The whole process dies: the server stops mid-stream, nothing is
  // flushed or handed over.
  void Kill() {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    repl_.reset();
  }

  repl::PrimaryReplication* repl() { return repl_.get(); }
  uint16_t port() const { return port_; }

 private:
  std::shared_ptr<repl::PrimaryReplication> repl_;
  std::unique_ptr<net::RpcServer> server_;
  uint16_t port_ = 0;
};

repl::ReplicationOptions FastReplication() {
  repl::ReplicationOptions options;
  options.pull_poll_interval_s = 0.01;
  options.pull_long_poll_s = 0.05;
  return options;
}

std::unique_ptr<repl::StandbyReplication> StartStandby(
    const std::string& dir, uint16_t primary_port,
    repl::ReplicationOptions options = FastReplication()) {
  repl::StandbyReplication::Options standby_options;
  standby_options.wal_dir = dir;
  standby_options.standby_id = "test-standby";
  standby_options.primary_port = primary_port;
  standby_options.replication = options;
  standby_options.pull_deadline_s = 1.0;
  Result<std::unique_ptr<repl::StandbyReplication>> standby =
      repl::StandbyReplication::Start(std::move(standby_options));
  EXPECT_TRUE(standby.ok()) << standby.status().ToString();
  return standby.ok() ? std::move(*standby) : nullptr;
}

TEST_F(ReplicationTest, StandbyCatchesUpAndHoldsIdenticalBytes) {
  const std::string primary_dir = MakeTempDir("ship_p");
  const std::string replica_dir = MakeTempDir("ship_r");
  MiniPrimary primary;
  ASSERT_NO_FATAL_FAILURE(primary.Start(primary_dir, 1, 0,
                                        FastReplication()));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        primary.repl()->Append(WalRecordType::kSubmit, Blob(i)).ok());
  }
  std::unique_ptr<repl::StandbyReplication> standby =
      StartStandby(replica_dir, primary.port());
  ASSERT_NE(standby, nullptr);
  ASSERT_TRUE(WaitFor(
      [&] {
        const auto view = standby->status();
        return view.applied_lsn == 10 && view.lag == 0;
      },
      10.0))
      << "applied=" << standby->status().applied_lsn;
  // Live appends ship through the long poll, not just catch-up reads.
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(
        primary.repl()->Append(WalRecordType::kSubmit, Blob(i)).ok());
  }
  ASSERT_TRUE(
      WaitFor([&] { return standby->status().applied_lsn == 14; }, 10.0));
  EXPECT_EQ(standby->status().epoch, 1u);  // adopted from the stream
  standby.reset();  // stop pulling before comparing bytes
  EXPECT_EQ(SegmentBytes(replica_dir), SegmentBytes(primary_dir));
}

// Satellite sweep, end to end: the primary process dies at every
// ship-path failpoint — the append itself, a torn local frame, the
// durability step, the response frame on the wire — restarts from its
// own recovered WAL, and the standby re-converges to byte-identical
// state without losing anything durable.
TEST_F(ReplicationTest, PrimaryDeathSweepStandbyReconverges) {
  const struct {
    const char* failpoint;
    bool errno_style;
  } kFaults[] = {
      {"wal.append", false},
      {"wal.append.torn", false},
      {"wal.io.fsync", true},
      {"net.send.drop", false},
  };
  for (const auto& fault : kFaults) {
    SCOPED_TRACE(fault.failpoint);
    const std::string primary_dir =
        MakeTempDir(std::string("death_p_") + fault.failpoint);
    const std::string replica_dir =
        MakeTempDir(std::string("death_r_") + fault.failpoint);
    MiniPrimary primary;
    ASSERT_NO_FATAL_FAILURE(
        primary.Start(primary_dir, 1, 0, FastReplication()));
    std::unique_ptr<repl::StandbyReplication> standby =
        StartStandby(replica_dir, primary.port());
    ASSERT_NE(standby, nullptr);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          primary.repl()->Append(WalRecordType::kSubmit, Blob(i)).ok());
    }
    ASSERT_TRUE(
        WaitFor([&] { return standby->status().applied_lsn == 6; }, 10.0));

    // The fault fires mid-ship; then the primary dies where it stood.
    if (fault.errno_style) {
      FaultInjector::Instance().ArmErrno(fault.failpoint, EIO);
    } else {
      FaultInjector::Instance().Arm(fault.failpoint);
    }
    const Result<uint64_t> doomed =
        primary.repl()->Append(WalRecordType::kSubmit, Blob(6));
    if (std::string(fault.failpoint) == "net.send.drop") {
      // The wire fault hits the pull stream, not the append.
      ASSERT_TRUE(doomed.ok());
    } else {
      ASSERT_FALSE(doomed.ok());
    }
    const uint16_t port = primary.port();
    primary.Kill();
    FaultInjector::Instance().Reset();

    // Restart on the same port from the same directory: recovery
    // truncates whatever the crash tore, the epoch is unchanged (this
    // primary was never deposed), and the standby just keeps pulling.
    MiniPrimary restarted;
    ASSERT_NO_FATAL_FAILURE(
        restarted.Start(primary_dir, 1, port, FastReplication()));
    const uint64_t recovered = restarted.repl()->durable_lsn();
    EXPECT_GE(recovered, 6u);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          restarted.repl()->Append(WalRecordType::kSubmit, Blob(100 + i))
              .ok());
    }
    const uint64_t final_lsn = restarted.repl()->durable_lsn();
    ASSERT_TRUE(WaitFor(
        [&] { return standby->status().applied_lsn == final_lsn; }, 15.0))
        << "applied=" << standby->status().applied_lsn
        << " want=" << final_lsn
        << " last_error=" << standby->status().last_error;
    standby.reset();
    restarted.Kill();
    EXPECT_EQ(SegmentBytes(replica_dir), SegmentBytes(primary_dir));
  }
}

// The dedicated fencing test: both directions of the epoch handshake.
TEST_F(ReplicationTest, StalePrimaryIsRefusedAndNewerEpochFences) {
  // (a) A standby that has seen epoch 5 refuses a primary stuck at 1 —
  // even one that ignores the fencing protocol entirely. The fake
  // primary answers every pull with epoch 1 and fresh-looking data.
  const std::string replica_dir = MakeTempDir("fence_r");
  ASSERT_TRUE(repl::StoreEpoch(replica_dir, 5).ok());
  net::RpcServer fake_stale("127.0.0.1");
  fake_stale.Register(
      repl::kMethodWalPull,
      [](const std::vector<uint8_t>& body) -> Result<std::vector<uint8_t>> {
        KAMEL_ASSIGN_OR_RETURN(const repl::PullRequest request,
                               repl::DecodePullRequest(body));
        (void)request;
        repl::PullResponse response;
        response.epoch = 1;  // deposed epoch, still claiming to serve
        response.chunk.kind = WalShipChunk::Kind::kReset;
        response.chunk.next_segment_base = 1;
        return repl::EncodePullResponse(response);
      });
  ASSERT_TRUE(fake_stale.Start(0).ok());
  std::unique_ptr<repl::StandbyReplication> standby =
      StartStandby(replica_dir, fake_stale.port());
  ASSERT_NE(standby, nullptr);
  ASSERT_TRUE(WaitFor(
      [&] { return standby->status().stale_primary_refusals >= 2; }, 10.0));
  EXPECT_EQ(standby->status().applied_lsn, 0u);  // nothing was believed
  EXPECT_EQ(standby->status().epoch, 5u);        // and nothing adopted
  standby.reset();
  fake_stale.Stop();

  // (b) A primary that sees proof of a higher epoch fences itself,
  // permanently: the pull errors, appends refuse, the role turns FENCED.
  const std::string primary_dir = MakeTempDir("fence_p");
  ASSERT_TRUE(repl::StoreEpoch(primary_dir, 3).ok());
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(SmallSegmentOptions(primary_dir));
  ASSERT_TRUE(wal.ok());
  repl::PrimaryReplication primary(std::move(*wal), 3, FastReplication());
  ASSERT_TRUE(primary.Append(WalRecordType::kSubmit, Blob(0)).ok());

  repl::PullRequest newer;
  newer.standby_id = "from-the-future";
  newer.epoch = 7;
  Result<repl::PullResponse> fenced = primary.HandlePull(newer);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(primary.fenced());
  Result<uint64_t> refused = primary.Append(WalRecordType::kSubmit, Blob(1));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // (c) A follower still on a LOWER epoch is not an error: it gets our
  // epoch plus a reset so it can wipe divergent history and rejoin.
  const std::string primary2_dir = MakeTempDir("fence_p2");
  Result<std::unique_ptr<WriteAheadLog>> wal2 =
      WriteAheadLog::Open(SmallSegmentOptions(primary2_dir));
  ASSERT_TRUE(wal2.ok());
  repl::PrimaryReplication primary2(std::move(*wal2), 3, FastReplication());
  ASSERT_TRUE(primary2.Append(WalRecordType::kSubmit, Blob(2)).ok());
  repl::PullRequest older;
  older.standby_id = "deposed";
  older.epoch = 1;
  older.segment_base = 42;  // divergent position; must not matter
  older.offset = 999;
  Result<repl::PullResponse> reset = primary2.HandlePull(older);
  ASSERT_TRUE(reset.ok()) << reset.status().ToString();
  EXPECT_EQ(reset->epoch, 3u);
  EXPECT_EQ(reset->chunk.kind, WalShipChunk::Kind::kReset);
}

TEST_F(ReplicationTest, SemiSyncSubmitNeedsAStandbyAck) {
  const std::string primary_dir = MakeTempDir("semisync_p");
  const std::string replica_dir = MakeTempDir("semisync_r");
  repl::ReplicationOptions options = FastReplication();
  options.min_sync_standbys = 1;
  options.ack_timeout_s = 0.3;
  MiniPrimary primary;
  ASSERT_NO_FATAL_FAILURE(primary.Start(primary_dir, 1, 0, options));

  // Durable locally, but replication cover is absent: the ack times out.
  Result<uint64_t> lsn =
      primary.repl()->Append(WalRecordType::kSubmit, Blob(0));
  ASSERT_TRUE(lsn.ok());
  Status uncovered = primary.repl()->WaitReplicated(*lsn);
  ASSERT_FALSE(uncovered.ok());
  EXPECT_EQ(uncovered.code(), StatusCode::kUnavailable);

  // With a standby pulling, the same wait succeeds (acks ride pulls).
  std::unique_ptr<repl::StandbyReplication> standby =
      StartStandby(replica_dir, primary.port());
  ASSERT_NE(standby, nullptr);
  ASSERT_TRUE(WaitFor(
      [&] { return primary.repl()->WaitReplicated(*lsn).ok(); }, 10.0));
}

// ---------------------------------------------------------------------------
// Engine + router observation consistency (the stats satellite)

KamelOptions ReplKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 25;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 150;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

class ReplicatedFleetTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec()));
    Kamel system(ReplKamelOptions());
    ASSERT_TRUE(system.Train(scenario_->train).ok());
    snapshot_path_ =
        new std::string(testing::TempDir() + "/kamel_repl_snapshot.bin");
    ASSERT_TRUE(system.SaveToFile(*snapshot_path_).ok());
    Result<std::shared_ptr<const KamelSnapshot>> snapshot = system.Snapshot();
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = new std::shared_ptr<const KamelSnapshot>(*snapshot);
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete snapshot_path_;
    delete scenario_;
    snapshot_ = nullptr;
    snapshot_path_ = nullptr;
    scenario_ = nullptr;
  }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  static Trajectory SparseTest(size_t i) {
    return Sparsify(scenario_->test.trajectories[i], 400.0);
  }

  // One worker of a replicated group: wal_dir turns replication on;
  // standby_of_port != 0 makes it a standby of that primary.
  static std::unique_ptr<ShardWorker> StartWorker(
      const std::string& wal_dir, uint16_t port = 0,
      uint16_t standby_of_port = 0) {
    WorkerOptions options;
    options.port = port;
    options.shard = 0;
    options.num_shards = 1;
    options.kamel = ReplKamelOptions();
    options.wal_dir = wal_dir;
    options.standby_of_port = standby_of_port;
    options.replication.pull_poll_interval_s = 0.01;
    options.replication.pull_long_poll_s = 0.05;
    auto worker = std::make_unique<ShardWorker>(options);
    const Status started = worker->Start(*snapshot_path_);
    EXPECT_TRUE(started.ok()) << started.ToString();
    if (!started.ok()) return nullptr;
    return worker;
  }

  // Generous call budget (single-core CI), fast probing so promotion
  // rounds complete in test time.
  static RouterOptions ReplicatedRouterOptions() {
    RouterOptions options;
    options.call_deadline_s = 30.0;
    options.replicas = 1;
    options.probe_interval_s = 0.1;
    options.promote_deadline_s = 30.0;
    return options;
  }

  static void ExpectSameImputation(const ImputedTrajectory& a,
                                   const ImputedTrajectory& b) {
    ASSERT_EQ(a.trajectory.points.size(), b.trajectory.points.size());
    for (size_t i = 0; i < a.trajectory.points.size(); ++i) {
      EXPECT_EQ(a.trajectory.points[i].pos.lat,
                b.trajectory.points[i].pos.lat);
      EXPECT_EQ(a.trajectory.points[i].pos.lng,
                b.trajectory.points[i].pos.lng);
      EXPECT_EQ(a.trajectory.points[i].time, b.trajectory.points[i].time);
    }
    EXPECT_EQ(a.stats.segments, b.stats.segments);
    EXPECT_EQ(a.stats.failed_segments, b.stats.failed_segments);
    EXPECT_EQ(a.stats.bert_calls, b.stats.bert_calls);
  }

  static SimScenario* scenario_;
  static std::string* snapshot_path_;
  static std::shared_ptr<const KamelSnapshot>* snapshot_;
};

SimScenario* ReplicatedFleetTest::scenario_ = nullptr;
std::string* ReplicatedFleetTest::snapshot_path_ = nullptr;
std::shared_ptr<const KamelSnapshot>* ReplicatedFleetTest::snapshot_ =
    nullptr;

TEST_F(ReplicatedFleetTest, EngineStatusIsOneConsistentObservation) {
  ServingEngine engine(*snapshot_, {});
  const EngineStatus status = engine.status();
  EXPECT_EQ(status.health, HealthState::kServing);
  EXPECT_EQ(engine.health(), status.health);
  EXPECT_EQ(engine.stats().admitted, status.stats.admitted);
  engine.Drain();
  const EngineStatus drained = engine.status();
  EXPECT_EQ(drained.health, HealthState::kDraining);
  EXPECT_EQ(engine.health(), HealthState::kDraining);
}

// The full promotion story, one fleet: serve → kill the primary →
// automatic promotion with a bumped epoch → the resurrected old primary
// is marked stale and refused → it rejoins as a standby of the new
// epoch and catches up.
TEST_F(ReplicatedFleetTest, PromotionFencingAndRejoin) {
  const std::string primary_dir = MakeTempDir("fleet_p");
  const std::string standby_dir = MakeTempDir("fleet_s");
  std::unique_ptr<ShardWorker> w0 = StartWorker(primary_dir);
  ASSERT_NE(w0, nullptr);
  const uint16_t w0_port = w0->port();
  std::unique_ptr<ShardWorker> w1 =
      StartWorker(standby_dir, 0, w0_port);
  ASSERT_NE(w1, nullptr);
  const uint16_t w1_port = w1->port();

  ShardRouter router(*snapshot_,
                     {{"127.0.0.1", w0_port}, {"127.0.0.1", w1_port}},
                     ReplicatedRouterOptions());
  EXPECT_EQ(router.num_shards(), 1);   // one group...
  EXPECT_EQ(router.num_replicas(), 2);  // ...of two workers
  ASSERT_TRUE(router.WaitHealthy(30.0).ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        const auto views = router.ReplicaViews();
        return views[0].role == repl::ReplicaRole::kPrimary &&
               views[1].role == repl::ReplicaRole::kStandby;
      },
      15.0));

  // Reads are byte-identical to single-process imputation no matter
  // which group member serves them.
  for (size_t i = 0; i < 3 && i < scenario_->test.trajectories.size(); ++i) {
    const Trajectory sparse = SparseTest(i);
    Result<ImputedTrajectory> direct = (*snapshot_)->Impute(sparse);
    Result<ImputedTrajectory> routed = router.Impute(sparse);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ExpectSameImputation(*direct, *routed);
  }

  // A durable submit through the epoch-1 primary, replicated to the
  // standby before we pull the trigger.
  Result<shard::SubmitAck> ack =
      router.Submit(scenario_->test.trajectories[0]);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->epoch, 1u);
  EXPECT_GE(ack->lsn, 1u);
  ASSERT_TRUE(WaitFor(
      [&] { return router.ReplicaViews()[1].applied_lsn >= ack->lsn; },
      15.0));

  // Kill the primary. The prober notices, promotes the standby at epoch
  // 2, and writes keep flowing — to the survivor.
  w0->Stop();
  ASSERT_TRUE(WaitFor(
      [&] {
        const auto views = router.ReplicaViews();
        return views[1].is_primary &&
               views[1].role == repl::ReplicaRole::kPrimary &&
               views[1].epoch == 2;
      },
      30.0));
  EXPECT_GE(router.stats().promotions, 1);
  Result<shard::SubmitAck> ack2 =
      router.Submit(scenario_->test.trajectories[1]);
  ASSERT_TRUE(ack2.ok()) << ack2.status().ToString();
  EXPECT_EQ(ack2->epoch, 2u);
  EXPECT_GT(ack2->lsn, ack->lsn);  // history continued, nothing rewound

  // Reads survive the failover too (the promoted member serves them).
  Result<ImputedTrajectory> direct = (*snapshot_)->Impute(SparseTest(0));
  Result<ImputedTrajectory> routed = router.Impute(SparseTest(0));
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ExpectSameImputation(*direct, *routed);

  // Resurrect the old primary exactly as it died: same port, same WAL
  // dir, epoch 1 on disk. The router must mark it stale and keep routing
  // writes to the epoch-2 primary.
  w0.reset();
  w0 = StartWorker(primary_dir, w0_port);
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->role_info().epoch, 1u);
  ASSERT_TRUE(WaitFor(
      [&] { return router.ReplicaViews()[0].stale; }, 15.0));
  EXPECT_GE(router.stats().stale_primaries, 1);
  Result<shard::SubmitAck> ack3 =
      router.Submit(scenario_->test.trajectories[2]);
  ASSERT_TRUE(ack3.ok()) << ack3.status().ToString();
  EXPECT_EQ(ack3->epoch, 2u);  // never the resurrected epoch-1 worker

  // Rejoin: restart the deposed worker as a standby of the new primary.
  // Its pull carries epoch 1; the primary answers reset + epoch 2; it
  // wipes the divergent history and catches up.
  w0->Stop();
  w0.reset();
  w0 = StartWorker(primary_dir, w0_port, w1_port);
  ASSERT_NE(w0, nullptr);
  ASSERT_TRUE(WaitFor(
      [&] {
        const auto views = router.ReplicaViews();
        return views[0].role == repl::ReplicaRole::kStandby &&
               views[0].epoch == 2 && !views[0].stale &&
               views[0].applied_lsn >= ack3->lsn;
      },
      30.0));

  w0->Stop();
  w1->Stop();
}

// The RouterStats satellite: snapshots must be mutually consistent while
// calls, retries, and hedges are being counted from many threads. A tiny
// hedge budget makes hedges fire constantly; the reader asserts the
// cross-counter invariants at every observation.
TEST_F(ReplicatedFleetTest, RouterStatsSnapshotsAreMutuallyConsistent) {
  const std::string wal_dir = MakeTempDir("stats_w");
  std::unique_ptr<ShardWorker> worker = StartWorker(wal_dir);
  ASSERT_NE(worker, nullptr);
  RouterOptions options;
  options.call_deadline_s = 30.0;
  options.hedge_min_s = 0.0001;  // hedge almost every call
  ShardRouter router(*snapshot_, {{"127.0.0.1", worker->port()}}, options);
  ASSERT_TRUE(router.WaitHealthy(30.0).ok());

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      const shard::RouterStats stats = router.stats();
      // Single mutex, single snapshot: a hedge or retry can never be
      // visible before the remote call it rode on.
      EXPECT_LE(stats.hedges, stats.remote_calls);
      EXPECT_LE(stats.retries, stats.remote_calls);
      EXPECT_LE(stats.hedge_wins, stats.hedges);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        Result<ImputedTrajectory> result =
            router.Impute(SparseTest((t + i) % 4));
        EXPECT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  done.store(true);
  reader.join();
  const shard::RouterStats stats = router.stats();
  EXPECT_EQ(stats.imputations, 12);
  EXPECT_LE(stats.hedges, stats.remote_calls);
  worker->Stop();
}

}  // namespace
}  // namespace kamel
