#include <gtest/gtest.h>

#include <cmath>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

namespace kamel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("model x");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "model x");
  EXPECT_EQ(status.ToString(), "NotFound: model x");
}

TEST(StatusTest, EveryCodeHasName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kIOError, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    KAMEL_RETURN_NOT_OK(Status::IOError("disk"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::InvalidArgument("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool ok) -> Result<int> {
    if (!ok) return Status::NotFound("nope");
    return 7;
  };
  auto consumer = [&](bool ok) -> Result<int> {
    KAMEL_ASSIGN_OR_RETURN(int value, producer(ok));
    return value * 2;
  };
  EXPECT_EQ(*consumer(true), 14);
  EXPECT_EQ(consumer(false).status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedDrawsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    same += (parent.NextUint64() == child.NextUint64());
  }
  EXPECT_LT(same, 2);
}

TEST(BinaryIoTest, RoundTripsAllTypes) {
  BinaryWriter writer;
  writer.WriteU8(250);
  writer.WriteU32(123456789u);
  writer.WriteU64(0xDEADBEEFCAFEBABEULL);
  writer.WriteI32(-42);
  writer.WriteI64(-1234567890123LL);
  writer.WriteF32(3.5f);
  writer.WriteF64(-2.25);
  writer.WriteString("kamel");
  const float arr[3] = {1.0f, 2.0f, 3.0f};
  writer.WriteF32Array(arr, 3);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadU8(), 250);
  EXPECT_EQ(*reader.ReadU32(), 123456789u);
  EXPECT_EQ(*reader.ReadU64(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(*reader.ReadI32(), -42);
  EXPECT_EQ(*reader.ReadI64(), -1234567890123LL);
  EXPECT_EQ(*reader.ReadF32(), 3.5f);
  EXPECT_EQ(*reader.ReadF64(), -2.25);
  EXPECT_EQ(*reader.ReadString(), "kamel");
  float out[3] = {};
  ASSERT_TRUE(reader.ReadF32Array(out, 3).ok());
  EXPECT_EQ(out[2], 3.0f);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIoTest, TruncatedReadFails) {
  BinaryWriter writer;
  writer.WriteU32(7);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU32().ok());
}

TEST(BinaryIoTest, ArrayLengthMismatchFails) {
  BinaryWriter writer;
  const float arr[2] = {1.0f, 2.0f};
  writer.WriteF32Array(arr, 2);
  BinaryReader reader(writer.buffer());
  float out[3];
  EXPECT_FALSE(reader.ReadF32Array(out, 3).ok());
}

TEST(BinaryIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/kamel_binary_io_test.bin";
  BinaryWriter writer;
  writer.WriteString("persisted");
  ASSERT_TRUE(writer.FlushToFile(path).ok());
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadString(), "persisted");
}

TEST(BinaryIoTest, MissingFileFails) {
  EXPECT_FALSE(BinaryReader::FromFile("/no/such/kamel/file").ok());
}

TEST(TableTest, AlignedRendering) {
  Table table("demo", {"a", "long_header", "c"});
  table.AddRow({"1", "2"});
  table.AddRow({"wide_cell", "x", "y"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.row(0)[2], "");  // padded
}

TEST(TableTest, CsvEscaping) {
  Table table("csv", {"x"});
  table.AddRow({"a,b"});
  table.AddRow({"say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::Num(10.0, 0), "10");
}

}  // namespace
}  // namespace kamel
