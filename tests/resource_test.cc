// Resource-exhaustion hardening tests: the shared retry/backoff helper,
// the stuck-IO watchdog, errno-level fault sweeps over every WAL and
// snapshot IO seam (ENOSPC / EIO / EMFILE / short writes must yield a
// clean Status and never lose an acknowledged record), the WAL disk
// budget governor and its ingestion-side degradation ladder, byte-
// accounted model-cache residency with pin-aware eviction, and the
// engine-level RESOURCE_PRESSURE signals. This binary carries the
// "resource" label plus "robustness" (ASan/UBSan leg) and "concurrency"
// (TSan leg): the watchdog and stall scenarios mix threads with faults.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/binary_io.h"
#include "common/fault_injection.h"
#include "common/io_watchdog.h"
#include "core/kamel.h"
#include "core/maintenance.h"
#include "core/model_repository.h"
#include "grid/hex_grid.h"
#include "io/trajectory_csv.h"
#include "io/wal.h"
#include "sim/datasets.h"

namespace kamel {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<uint8_t> Bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

// ---- shared retry/backoff helper --------------------------------------

TEST(BackoffTest, SchedulesAreDeterministicPerSeedAndDecorrelatedAcrossSeeds) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  Backoff a(policy, 7);
  Backoff b(policy, 7);
  Backoff c(policy, 8);
  bool any_differs = false;
  for (int retry = 1; retry <= 6; ++retry) {
    const double da = a.NextDelayMs(retry);
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs(retry)) << "retry " << retry;
    any_differs = any_differs || da != c.NextDelayMs(retry);
  }
  EXPECT_TRUE(any_differs) << "distinct seeds produced identical schedules";
}

TEST(BackoffTest, DelaysDoubleWithinTheJitterBandAndRespectTheCap) {
  RetryPolicy policy;
  policy.base_backoff_ms = 20.0;
  policy.max_backoff_ms = 30.0;  // caps the full delay from retry 2 on
  Backoff backoff(policy, 99);
  // Full (pre-jitter) delays: 20, min(40,30)=30, min(80,30)=30.
  const double full[] = {20.0, 30.0, 30.0};
  for (int retry = 1; retry <= 3; ++retry) {
    const double delay = backoff.NextDelayMs(retry);
    EXPECT_GE(delay, policy.jitter_lo * full[retry - 1]) << "retry " << retry;
    EXPECT_LT(delay, policy.jitter_hi * full[retry - 1]) << "retry " << retry;
  }
}

TEST(BackoffTest, CustomJitterBandIsHalfOpen) {
  // The router hedges based on these bounds: a delay at or above
  // jitter_hi * full would push a retry past its deadline budget.
  RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.max_backoff_ms = 400.0;
  policy.jitter_lo = 0.1;
  policy.jitter_hi = 0.2;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    Backoff backoff(policy, seed);
    const double full[] = {100.0, 200.0, 400.0, 400.0};
    for (int retry = 1; retry <= 4; ++retry) {
      const double delay = backoff.NextDelayMs(retry);
      EXPECT_GE(delay, policy.jitter_lo * full[retry - 1])
          << "seed " << seed << " retry " << retry;
      EXPECT_LT(delay, policy.jitter_hi * full[retry - 1])
          << "seed " << seed << " retry " << retry;
    }
  }
}

TEST(BackoffTest, NonPositiveBaseRetriesImmediately) {
  RetryPolicy policy;
  policy.base_backoff_ms = 0.0;
  Backoff backoff(policy, 1);
  for (int retry = 1; retry <= 3; ++retry) {
    EXPECT_EQ(backoff.NextDelayMs(retry), 0.0);
  }
}

TEST(RetryTest, FirstAttemptSuccessRunsExactlyOnce) {
  RetryPolicy policy;
  policy.base_backoff_ms = 0.0;
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, 1, [&] {
    ++attempts;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, TransientFailureRetriesUntilSuccess) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_backoff_ms = 0.0;
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, 1, [&] {
    return ++attempts < 3 ? Status::IOError("transient") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
}

TEST(RetryTest, ExhaustedRetriesAnnotateTheAttemptCount) {
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_backoff_ms = 0.0;
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, 1, [&] {
    ++attempts;
    return Status::IOError("disk rot");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(attempts, 1 + policy.max_retries);
  EXPECT_NE(status.message().find("after 3 attempts"), std::string::npos)
      << status.message();
}

TEST(RetryTest, DeadlineStopsTheScheduleEarly) {
  RetryPolicy policy;
  policy.max_retries = 50;          // would retry forever...
  policy.base_backoff_ms = 5.0;     // ...with real sleeps...
  policy.deadline_s = 1e-6;         // ...but the deadline has passed already
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, 1, [&] {
    ++attempts;
    return Status::IOError("still failing");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_LE(attempts, 2);  // deadline-aware: nowhere near 51 attempts
  EXPECT_NE(status.message().find("deadline exceeded"), std::string::npos)
      << status.message();
}

TEST(RetryTest, BudgetSmallerThanFirstDelayNeverSleepsIt) {
  // Deadline-edge contract: the budget is checked AFTER an attempt, so
  // the operation always runs at least once — but a first delay larger
  // than the whole budget is never slept. With a 60-second base delay,
  // finishing fast proves the schedule was abandoned, not waited out.
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.base_backoff_ms = 60'000.0;
  policy.deadline_s = 1e-3;
  int attempts = 0;
  const auto start = std::chrono::steady_clock::now();
  const Status status = RetryWithBackoff(policy, 1, [&] {
    ++attempts;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return Status::Unavailable("peer down");
  });
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(attempts, 1);
  EXPECT_LT(elapsed_s, 5.0);  // nowhere near one 60 s backoff
  // The annotation names the attempt count and keeps the original code —
  // the router's is-this-retryable dispatch reads the code, not the text.
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("deadline exceeded after 1 attempts"),
            std::string::npos)
      << status.message();
}

TEST(RetryTest, DeadlineNeverTrumpsASuccess) {
  // The deadline is only consulted after a FAILED attempt: work that
  // succeeds just past the budget is still a success, never discarded.
  RetryPolicy policy;
  policy.deadline_s = 1e-9;  // already expired when the attempt returns
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, 1, [&] {
    ++attempts;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 1);
}

// ---- stuck-IO watchdog ------------------------------------------------

class IoWatchdogTest : public testing::Test {
 protected:
  void SetUp() override { IoWatchdog::Instance().ResetCounters(); }
  void TearDown() override { IoWatchdog::Instance().ResetCounters(); }
};

TEST_F(IoWatchdogTest, FastOperationsDoNotCountAsStalls) {
  const int64_t before = IoWatchdog::Instance().stall_events();
  {
    auto watch = IoWatchdog::Instance().Watch("test.fast", 30.0);
    EXPECT_FALSE(watch.stalled());
  }
  EXPECT_EQ(IoWatchdog::Instance().stuck_now(), 0);
  EXPECT_EQ(IoWatchdog::Instance().stall_events(), before);
}

TEST_F(IoWatchdogTest, InFlightStallIsVisibleFromAnotherThread) {
  // The point of the watchdog: a hung syscall never returns, so the
  // stall must be observable from OUTSIDE the blocked thread.
  std::thread hung([] {
    auto watch = IoWatchdog::Instance().Watch("test.hang", 0.01);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_TRUE(watch.stalled());
  });
  bool seen_stuck = false;
  bool seen_name = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!seen_stuck && std::chrono::steady_clock::now() < deadline) {
    if (IoWatchdog::Instance().stuck_now() > 0) {
      seen_stuck = true;
      for (const std::string& name : IoWatchdog::Instance().StuckOps()) {
        seen_name = seen_name || name == "test.hang";
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hung.join();
  EXPECT_TRUE(seen_stuck) << "in-flight stall never surfaced in stuck_now()";
  EXPECT_TRUE(seen_name) << "StuckOps() did not name the hung operation";
  // The operation completed: no longer stuck, but the stall was recorded.
  EXPECT_EQ(IoWatchdog::Instance().stuck_now(), 0);
  EXPECT_GE(IoWatchdog::Instance().stall_events(), 1);
}

TEST_F(IoWatchdogTest, StallsCountOncePerOperation) {
  {
    auto watch = IoWatchdog::Instance().Watch("test.slow", 0.005);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    // Multiple scans plus completion must not double-count the stall.
    EXPECT_GE(IoWatchdog::Instance().stuck_now(), 1);
    EXPECT_GE(IoWatchdog::Instance().stuck_now(), 1);
  }
  EXPECT_EQ(IoWatchdog::Instance().stall_events(), 1);
}

TEST_F(IoWatchdogTest, NonPositiveBudgetDisablesWatching) {
  auto watch = IoWatchdog::Instance().Watch("test.unwatched", 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(watch.stalled());
  EXPECT_EQ(IoWatchdog::Instance().stuck_now(), 0);
}

// ---- errno-level WAL fault sweeps -------------------------------------

struct IoSweepCase {
  const char* failpoint;
  int err;
  bool short_write;
};

// An acknowledged append: LSN plus the exact payload the caller handed in.
using AckedRecord = std::pair<uint64_t, std::vector<uint8_t>>;

bool Recovered(const WalRecoveryReport& report, const AckedRecord& acked) {
  for (const WalRecord& record : report.records) {
    if (record.lsn == acked.first && record.payload == acked.second) {
      return true;
    }
  }
  return false;
}

TEST(WalErrnoTest, AppendPathSweepNeverLosesAckedRecords) {
  const IoSweepCase cases[] = {
      {"wal.io.write", ENOSPC, false}, {"wal.io.write", EIO, false},
      {"wal.io.write", ENOSPC, true},  {"wal.io.fsync", EIO, false},
      {"wal.io.fsync", ENOSPC, false}, {"wal.io.dirsync", EIO, false},
      {"wal.io.open", EMFILE, false},
  };
  int index = 0;
  for (const IoSweepCase& c : cases) {
    SCOPED_TRACE(std::string(c.failpoint) + " errno=" +
                 std::to_string(c.err) +
                 (c.short_write ? " short-write" : ""));
    WalOptions options{.dir = FreshDir("wal_errno_sweep_" +
                                       std::to_string(index++))};
    options.segment_bytes = 256;  // rotations land inside the fault window
    auto opened = WriteAheadLog::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    std::unique_ptr<WriteAheadLog> log = std::move(*opened);

    std::vector<AckedRecord> acked;
    for (int i = 0; i < 3; ++i) {
      const std::vector<uint8_t> payload =
          Bytes("pre-fault-record-" + std::to_string(i) + "-padding-to-40b");
      auto lsn = log->Append(WalRecordType::kSubmit, payload);
      ASSERT_TRUE(lsn.ok()) << lsn.status().message();
      acked.emplace_back(*lsn, payload);
    }

    {
      ScopedIoFault fault(c.failpoint, c.err, /*skip=*/0, /*count=*/-1,
                          c.short_write);
      bool first_failure_checked = false;
      for (int i = 0; i < 6; ++i) {
        const std::vector<uint8_t> payload =
            Bytes("under-fault-record-" + std::to_string(i) +
                  "-padding-to-48-bytes!");
        auto lsn = log->Append(WalRecordType::kSubmit, payload);
        if (lsn.ok()) {
          acked.emplace_back(*lsn, payload);
        } else if (!first_failure_checked) {
          first_failure_checked = true;
          // The injected errno surfaces with the IO layer's mapping on
          // the first refusal (later ones may be the poisoned guard).
          if (c.err == ENOSPC) {
            EXPECT_EQ(lsn.status().code(), StatusCode::kResourceExhausted)
                << lsn.status().message();
          }
        }
      }
      // Sync and checkpoint under the same fault: any Status is fine,
      // crashing or corrupting is not.
      (void)log->Sync();
      (void)log->Checkpoint(0);
    }

    log.reset();  // "crash" with the fault cleared
    WalRecoveryReport report;
    auto reopened = WriteAheadLog::Open(options, &report);
    ASSERT_TRUE(reopened.ok()) << reopened.status().message();
    for (const AckedRecord& record : acked) {
      EXPECT_TRUE(Recovered(report, record))
          << "acked lsn " << record.first << " lost";
    }
    if (c.short_write) {
      EXPECT_GT(report.torn_tail_bytes, 0u)
          << "short write should have left a truncatable torn tail";
    }
    // The recovered log is fully writable again.
    EXPECT_TRUE(
        (*reopened)->Append(WalRecordType::kSubmit, Bytes("post")).ok());
  }
}

TEST(WalErrnoTest, ShortWritePoisonsTheLogUntilReopenTruncatesTheTear) {
  WalOptions options{.dir = FreshDir("wal_errno_short_write")};
  auto opened = WriteAheadLog::Open(options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WriteAheadLog> log = std::move(*opened);
  auto pre = log->Append(WalRecordType::kSubmit, Bytes("survives"));
  ASSERT_TRUE(pre.ok());

  {
    ScopedIoFault fault("wal.io.write", ENOSPC, /*skip=*/0, /*count=*/1,
                        /*short_write=*/true);
    auto torn = log->Append(WalRecordType::kSubmit, Bytes("torn-away"));
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.status().code(), StatusCode::kResourceExhausted);
  }
  // Half a frame is on disk: the log refuses every further append until
  // a reopen truncates the tear — appending would interleave garbage.
  auto refused = log->Append(WalRecordType::kSubmit, Bytes("refused"));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  log.reset();
  WalRecoveryReport report;
  auto reopened = WriteAheadLog::Open(options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_GT(report.torn_tail_bytes, 0u);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].payload, Bytes("survives"));
  EXPECT_TRUE(
      (*reopened)->Append(WalRecordType::kSubmit, Bytes("post")).ok());
}

TEST(WalErrnoTest, OpenPathFaultsFailCleanlyThenRecover) {
  WalOptions options{.dir = FreshDir("wal_errno_open_path")};
  {
    auto log = WriteAheadLog::Open(options);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*log)
                      ->Append(WalRecordType::kSubmit,
                               Bytes("record-" + std::to_string(i)))
                      .ok());
    }
    // Leave a torn tail behind so reopen also exercises the truncation
    // seam (wal.io.truncate) below.
    ScopedIoFault tear("wal.io.write", EIO, /*skip=*/0, /*count=*/1,
                       /*short_write=*/true);
    ASSERT_FALSE((*log)->Append(WalRecordType::kSubmit, Bytes("torn")).ok());
  }

  const IoSweepCase cases[] = {
      {"wal.io.read", EIO, false},
      {"wal.io.open", EMFILE, false},
      {"wal.io.truncate", EIO, false},
  };
  for (const IoSweepCase& c : cases) {
    SCOPED_TRACE(c.failpoint);
    ScopedIoFault fault(c.failpoint, c.err, /*skip=*/0, /*count=*/-1);
    auto blocked = WriteAheadLog::Open(options);
    EXPECT_FALSE(blocked.ok())
        << "open should refuse cleanly under " << c.failpoint;
  }

  WalRecoveryReport report;
  auto recovered = WriteAheadLog::Open(options, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(report.records.size(), 3u);
  EXPECT_GT(report.torn_tail_bytes, 0u);
}

TEST(WalErrnoTest, CheckpointUnlinkFaultIsRetryable) {
  WalOptions options{.dir = FreshDir("wal_errno_checkpoint")};
  options.segment_bytes = 128;  // several small segments
  auto opened = WriteAheadLog::Open(options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WriteAheadLog> log = std::move(*opened);
  uint64_t last_lsn = 0;
  for (int i = 0; i < 10; ++i) {
    auto lsn = log->Append(WalRecordType::kSubmit,
                           Bytes("record-" + std::to_string(i) +
                                 "-padded-out-to-some-width"));
    ASSERT_TRUE(lsn.ok());
    last_lsn = *lsn;
  }
  ASSERT_GE(log->segment_count(), 3u);

  {
    ScopedIoFault fault("wal.io.unlink", EIO, /*skip=*/0, /*count=*/1);
    const Status blocked = log->Checkpoint(last_lsn);
    EXPECT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.code(), StatusCode::kIOError);
  }
  // The failed GC left the log consistent: still appendable, and the
  // checkpoint retry finishes the deletion.
  EXPECT_TRUE(log->Append(WalRecordType::kSubmit, Bytes("after")).ok());
  ASSERT_TRUE(log->Checkpoint(last_lsn).ok());
  EXPECT_GT(log->stats().segments_deleted, 0);

  log.reset();
  WalRecoveryReport report;
  auto reopened = WriteAheadLog::Open(options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  // Everything at or below the watermark is GC'd; the post-watermark
  // append survives.
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].payload, Bytes("after"));
}

// ---- errno-level snapshot save/load sweeps ----------------------------

TEST(SnapshotErrnoTest, AtomicSaveSweepNeverDamagesTheExistingSnapshot) {
  const std::string dir = FreshDir("snapshot_errno_sweep");
  ASSERT_TRUE(fs::create_directories(dir));
  const std::string path = dir + "/snapshot.bin";

  BinaryWriter current;
  current.WriteString("generation-one");
  ASSERT_TRUE(current.FlushToFileAtomic(path).ok());

  const IoSweepCase cases[] = {
      {"snapshot.io.open", EMFILE, false},
      {"snapshot.io.open", ENOSPC, false},
      {"snapshot.io.write", ENOSPC, false},
      {"snapshot.io.write", ENOSPC, true},
      {"snapshot.io.write", EIO, false},
      {"snapshot.io.fsync", EIO, false},
      {"snapshot.io.rename", EIO, false},
  };
  for (const IoSweepCase& c : cases) {
    SCOPED_TRACE(std::string(c.failpoint) + " errno=" + std::to_string(c.err));
    BinaryWriter next;
    next.WriteString("generation-two");
    {
      ScopedIoFault fault(c.failpoint, c.err, /*skip=*/0, /*count=*/-1,
                          c.short_write);
      const Status blocked = next.FlushToFileAtomic(path);
      ASSERT_FALSE(blocked.ok());
      EXPECT_EQ(blocked.code(), c.err == ENOSPC
                                    ? StatusCode::kResourceExhausted
                                    : StatusCode::kIOError)
          << blocked.message();
    }
    // The existing snapshot is untouched and no torn temp file survives.
    auto reader = BinaryReader::FromFile(path);
    ASSERT_TRUE(reader.ok());
    auto generation = reader->ReadString();
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(*generation, "generation-one");
    size_t entries = 0;
    for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir)) {
      ++entries;
    }
    EXPECT_EQ(entries, 1u) << "temp file leaked into " << dir;
  }

  // A directory-fsync failure is special: it fires after the atomic
  // flip, so the save reports failure but the on-disk file is the NEW
  // valid snapshot — either generation is a consistent outcome, torn
  // state never is.
  BinaryWriter next;
  next.WriteString("generation-two");
  {
    ScopedIoFault fault("snapshot.io.dirsync", EIO, /*skip=*/0, /*count=*/-1);
    EXPECT_FALSE(next.FlushToFileAtomic(path).ok());
  }
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  auto generation = reader->ReadString();
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(*generation, "generation-two");
}

TEST(SnapshotErrnoTest, ReadFaultFailsCleanlyThenRecovers) {
  const std::string dir = FreshDir("snapshot_errno_read");
  ASSERT_TRUE(fs::create_directories(dir));
  const std::string path = dir + "/snapshot.bin";
  BinaryWriter writer;
  writer.WriteString("payload");
  ASSERT_TRUE(writer.FlushToFileAtomic(path).ok());

  {
    ScopedIoFault fault("snapshot.io.read", EIO, /*skip=*/0, /*count=*/-1);
    auto blocked = BinaryReader::FromFile(path);
    ASSERT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.status().code(), StatusCode::kIOError);
  }
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  auto payload = reader->ReadString();
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "payload");
}

// ---- WAL disk budget governor -----------------------------------------

TEST(WalBudgetTest, DataAppendsRefusedCleanlyMarkersExempt) {
  WalOptions options{.dir = FreshDir("wal_budget_refusal")};
  auto opened = WriteAheadLog::Open(options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WriteAheadLog> log = std::move(*opened);

  // Measure one frame instead of hard-coding header sizes.
  const std::vector<uint8_t> payload = Bytes("thirty-two-bytes-of-payload!!!!!");
  const uint64_t before = log->live_bytes();
  auto first = log->Append(WalRecordType::kSubmit, payload);
  ASSERT_TRUE(first.ok());
  const uint64_t frame = log->live_bytes() - before;
  ASSERT_GT(frame, payload.size());

  // Budget admits exactly one more data frame.
  log->set_disk_budget(log->live_bytes() + frame);
  EXPECT_TRUE(log->Append(WalRecordType::kSubmit, payload).ok());

  const uint64_t live = log->live_bytes();
  const uint64_t next = log->next_lsn();
  auto refused = log->Append(WalRecordType::kSubmit, payload);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // Refused BEFORE any byte or LSN was consumed: a clean refusal.
  EXPECT_EQ(log->live_bytes(), live);
  EXPECT_EQ(log->next_lsn(), next);
  EXPECT_EQ(log->stats().budget_refusals, 1);

  // Markers stay exempt even over budget: they are what unlocks GC, so
  // refusing them would wedge a full log permanently.
  EXPECT_TRUE(
      log->Append(WalRecordType::kBatchTrained, EncodeLsnPayload(next - 1))
          .ok());
  EXPECT_GT(log->live_bytes(), log->disk_budget());
}

TEST(WalBudgetTest, CheckpointGcReclaimsBudgetHeadroom) {
  WalOptions options{.dir = FreshDir("wal_budget_gc")};
  options.segment_bytes = 128;
  auto opened = WriteAheadLog::Open(options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WriteAheadLog> log = std::move(*opened);

  const std::vector<uint8_t> payload =
      Bytes("forty-eight-bytes-of-payload-padding-data-....!");
  uint64_t last_lsn = 0;
  for (int i = 0; i < 8; ++i) {
    auto lsn = log->Append(WalRecordType::kSubmit, payload);
    ASSERT_TRUE(lsn.ok());
    last_lsn = *lsn;
  }
  ASSERT_GE(log->segment_count(), 3u);

  log->set_disk_budget(log->live_bytes() + 8);
  auto refused = log->Append(WalRecordType::kSubmit, payload);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // Checkpoint GC deletes every fully-covered closed segment; the freed
  // bytes bring the same budget back under water.
  const uint64_t live_before_gc = log->live_bytes();
  ASSERT_TRUE(log->Checkpoint(last_lsn).ok());
  EXPECT_GT(log->stats().segments_deleted, 0);
  EXPECT_LT(log->live_bytes(), live_before_gc);
  EXPECT_TRUE(log->Append(WalRecordType::kSubmit, payload).ok());
}

TEST(WalBudgetTest, UtilizationExternalChargesAndRuntimeResize) {
  WalOptions options{.dir = FreshDir("wal_budget_util")};
  options.disk_budget_bytes = 1000;
  options.gc_pressure_fraction = 0.8;
  auto opened = WriteAheadLog::Open(options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WriteAheadLog> log = std::move(*opened);

  EXPECT_GT(log->live_bytes(), 0u);  // the segment header counts
  EXPECT_LT(log->utilization(), 0.8);
  EXPECT_FALSE(log->under_pressure());

  // The checkpoint snapshot shares the volume: charging it flips the
  // high-water mark; replacing the charge (a smaller checkpoint) drops it.
  log->AccountExternalBytes(900);
  EXPECT_GE(log->utilization(), 0.8);
  EXPECT_TRUE(log->under_pressure());
  log->AccountExternalBytes(10);
  EXPECT_FALSE(log->under_pressure());

  // Runtime resize: shrinking the volume under the log takes effect
  // immediately; 0 disables the governor entirely.
  log->set_disk_budget(8);
  EXPECT_GT(log->utilization(), 1.0);
  EXPECT_TRUE(log->under_pressure());
  log->set_disk_budget(0);
  EXPECT_EQ(log->utilization(), 0.0);
  EXPECT_FALSE(log->under_pressure());
}

// ---- ingestion-side governor (MaintenanceScheduler) -------------------

KamelOptions GovernorKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 40;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.train.steps = 30;
  options.bert.train.batch_size = 4;
  return options;
}

MaintenanceOptions ManualFlushPolicy() {
  MaintenanceOptions policy;
  policy.min_batch_trajectories = 1000;  // thresholds never fire on their own
  policy.min_batch_points = 100000000;
  return policy;
}

/// Byte-level fingerprint of what the system would serve for `probes`.
std::string ImputeFingerprint(Kamel* system, const TrajectoryDataset& probes) {
  auto imputed = system->ImputeBatch(probes);
  EXPECT_TRUE(imputed.ok()) << imputed.status().message();
  if (!imputed.ok()) return "";
  TrajectoryDataset out;
  for (const ImputedTrajectory& one : *imputed) {
    out.trajectories.push_back(one.trajectory);
  }
  return io::WriteCsvString(out);
}

TEST(GovernorTest, ShedsCleanlyAndRecoversWhenBudgetLifts) {
  const std::string dir = FreshDir("governor_shed");
  const SimScenario scenario = BuildScenario(MiniSpec(51));
  Kamel system(GovernorKamelOptions());
  MaintenanceScheduler scheduler(&system, ManualFlushPolicy());
  // No checkpoint path: the governor has no GC lever, so exhaustion can
  // only shed — the pure-backpressure half of the ladder.
  auto wal = OpenDurableIngestion(&system, &scheduler, {.dir = dir + "/wal"},
                                  "");
  ASSERT_TRUE(wal.ok()) << wal.status().message();

  ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[0]).ok());
  ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[1]).ok());
  size_t acked = 2;

  (*wal)->set_disk_budget((*wal)->live_bytes() + 10);
  const Status refused = scheduler.Submit(scenario.train.trajectories[2]);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.shed_submits(), 1);
  EXPECT_EQ(scheduler.pending_trajectories(), acked);
  EXPECT_GE((*wal)->stats().budget_refusals, 1);

  // Pressure lifts: the same trajectory is accepted — nothing about the
  // refusal half-applied or wedged the log.
  (*wal)->set_disk_budget(0);
  ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[2]).ok());
  ++acked;

  // Recovery sees exactly the acknowledged submits: the shed one was
  // never acked, so losing it is correct; losing an acked one is not.
  (*wal).reset();
  Kamel recovered(GovernorKamelOptions());
  MaintenanceScheduler recovered_scheduler(&recovered, ManualFlushPolicy());
  IngestRecoveryReport report;
  auto reopened = OpenDurableIngestion(&recovered, &recovered_scheduler,
                                       {.dir = dir + "/wal"}, "", &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(report.submits_replayed, acked);
  EXPECT_EQ(recovered_scheduler.pending_trajectories(), acked);
}

TEST(GovernorTest, PressureFlushTrainsCheckpointsAndRecoveryMatchesBytes) {
  const std::string dir = FreshDir("governor_pressure");
  const std::string checkpoint = dir + "/checkpoint.bin";
  const SimScenario scenario = BuildScenario(MiniSpec(51));
  TrajectoryDataset probes;
  for (size_t i = 0; i < 4 && i < scenario.test.trajectories.size(); ++i) {
    probes.trajectories.push_back(scenario.test.trajectories[i]);
  }
  ASSERT_FALSE(probes.trajectories.empty());

  WalOptions wal_options{.dir = dir + "/wal"};
  wal_options.segment_bytes = 4096;        // GC has segments to reclaim
  wal_options.gc_pressure_fraction = 0.1;  // pressure trips early
  Kamel system(GovernorKamelOptions());
  MaintenanceScheduler scheduler(&system, ManualFlushPolicy());
  auto wal = OpenDurableIngestion(&system, &scheduler, wal_options,
                                  checkpoint);
  ASSERT_TRUE(wal.ok()) << wal.status().message();

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[i]).ok());
  }

  // Squeeze the volume at runtime: 3x the current footprint is well past
  // the 0.1 high-water fraction, so the governor is under pressure while
  // real headroom remains — exactly the regime the proactive checkpoint
  // is designed for. Every further submit must degrade along the ladder
  // (proactive GC first, emergency flush + retry, clean shed last) and
  // never crash or half-apply.
  (*wal)->set_disk_budget((*wal)->live_bytes() * 3);
  for (int i = 4; i < 8; ++i) {
    const Status status = scheduler.Submit(scenario.train.trajectories[i]);
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kResourceExhausted)
        << status.message();
  }
  EXPECT_GE(scheduler.pressure_flushes(), 1);
  EXPECT_GE(scheduler.batches_trained(), 1);
  EXPECT_TRUE(system.trained());

  // Pressure lifts: ingestion recovers, and a final flush checkpoints
  // everything acknowledged so far.
  (*wal)->set_disk_budget(0);
  ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[8]).ok());
  ASSERT_TRUE(scheduler.Flush().ok());
  const std::string fingerprint = ImputeFingerprint(&system, probes);

  // A crash after the pressured episode recovers to the same bytes.
  (*wal).reset();
  Kamel recovered(GovernorKamelOptions());
  MaintenanceScheduler recovered_scheduler(&recovered, ManualFlushPolicy());
  IngestRecoveryReport report;
  auto reopened = OpenDurableIngestion(&recovered, &recovered_scheduler,
                                       wal_options, checkpoint, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(ImputeFingerprint(&recovered, probes), fingerprint);
}

// ---- byte-accounted model cache ---------------------------------------

// RepositoryTest geometry: SW + NW trajectory bundles yield at least a SW
// single, an NW single, their vertical pair, and the root — enough
// distinct models to fill a byte budget past its limit.
class CacheBudgetTest : public testing::Test {
 protected:
  static KamelOptions BaseOptions() {
    KamelOptions options;
    options.pyramid_height = 1;
    options.pyramid_levels = 2;
    options.model_token_threshold = 40;
    options.bert.encoder.d_model = 8;
    options.bert.encoder.num_heads = 2;
    options.bert.encoder.num_layers = 1;
    options.bert.encoder.ffn_dim = 16;
    options.bert.encoder.max_seq_len = 16;
    options.bert.encoder.dropout = 0.0;
    options.bert.train.steps = 30;
    options.bert.train.batch_size = 4;
    options.seed = 5;
    return options;
  }

  static void SetUpTestSuite() {
    pyramid_ = new Pyramid(BBox::FromCorners({0, 0}, {2000, 2000}), 1, 2);
    auto store = std::make_shared<TrajectoryStore>();
    HexGrid grid(75.0);
    std::vector<size_t> indices;
    auto add = [&](double x0, double y) {
      TokenizedTrajectory trajectory;
      for (int i = 0; i < 5; ++i) {
        const Vec2 p{x0 + i * 130.0, y};
        trajectory.push_back(
            {grid.CellOf(p), static_cast<double>(i) * 10.0, p, 0.0});
      }
      indices.push_back(store->Add(std::move(trajectory)));
    };
    for (int t = 0; t < 20; ++t) add(120.0, 150.0 + t * 40.0);
    for (int t = 0; t < 12; ++t) add(120.0, 1150.0 + t * 40.0);

    eager_ = new ModelRepository(*pyramid_, BaseOptions(), store);
    ASSERT_TRUE(eager_->AddTrainingBatch(indices).ok());
    ASSERT_GE(eager_->num_models(), 3);

    BinaryWriter writer;
    ASSERT_TRUE(eager_->Save(&writer).ok());
    path_ = new std::string(testing::TempDir() + "/cache_budget_repo.bin");
    ASSERT_TRUE(writer.FlushToFileAtomic(*path_).ok());
  }

  static void TearDownTestSuite() {
    delete eager_;
    delete pyramid_;
    delete path_;
    eager_ = nullptr;
    pyramid_ = nullptr;
    path_ = nullptr;
  }

  void TearDown() override { FaultInjector::Instance().Reset(); }

  /// Lazily loads the saved repository under the given residency budgets.
  static std::unique_ptr<ModelRepository> LoadLazy(int max_models,
                                                   uint64_t max_bytes) {
    KamelOptions options = BaseOptions();
    options.max_resident_models = max_models;
    options.max_resident_bytes = max_bytes;
    auto repo =
        std::make_unique<ModelRepository>(*pyramid_, options, nullptr);
    auto reader = BinaryReader::FromFile(*path_);
    EXPECT_TRUE(reader.ok());
    if (!reader.ok()) return nullptr;
    EXPECT_TRUE(repo->Load(&*reader, nullptr, path_).ok());
    return repo;
  }

  static std::vector<BBox> ModelBoxes() {
    return {
        BBox::FromCorners({100, 150}, {500, 600}),     // SW single
        BBox::FromCorners({100, 1150}, {600, 1500}),   // NW single
        BBox::FromCorners({100, 800}, {400, 1200}),    // SW-NW pair
        BBox::FromCorners({100, 100}, {1900, 1900}),   // root
    };
  }

  /// Sum of every model's budget charge: select all models with no byte
  /// limit and read back the accumulated residency.
  static uint64_t TotalModelBytes() {
    auto probe = LoadLazy(/*max_models=*/64, /*max_bytes=*/0);
    for (const BBox& box : ModelBoxes()) {
      EXPECT_NE(probe->SelectModel(box), nullptr);
    }
    return probe->cache()->resident_bytes();
  }

  static Pyramid* pyramid_;
  static ModelRepository* eager_;
  static std::string* path_;
};

Pyramid* CacheBudgetTest::pyramid_ = nullptr;
ModelRepository* CacheBudgetTest::eager_ = nullptr;
std::string* CacheBudgetTest::path_ = nullptr;

TEST_F(CacheBudgetTest, QuotaZeroKeepsCountOnlyBehavior) {
  auto repo = LoadLazy(/*max_models=*/1, /*max_bytes=*/0);
  ASSERT_NE(repo, nullptr);
  const ShardedModelCache* cache = repo->cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->max_resident_bytes(), 0u);
  for (int round = 0; round < 2; ++round) {
    for (const BBox& box : ModelBoxes()) {
      EXPECT_NE(repo->SelectModel(box), nullptr);
    }
  }
  // Bytes are tracked for observability but never create pressure.
  EXPECT_GT(cache->resident_bytes(), 0u);
  EXPECT_FALSE(cache->memory_pressure());
  EXPECT_EQ(cache->uncacheable_loads(), 0);
}

TEST_F(CacheBudgetTest, BudgetSmallerThanOneModelServesUncached) {
  auto repo = LoadLazy(/*max_models=*/0, /*max_bytes=*/1);
  ASSERT_NE(repo, nullptr);
  const ShardedModelCache* cache = repo->cache();
  ASSERT_NE(cache, nullptr);

  const BBox sw = ModelBoxes()[0];
  const ModelHandle first = repo->SelectModel(sw);
  const ModelHandle second = repo->SelectModel(sw);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  // Served fresh from disk each time, never cached, never evicting.
  EXPECT_GE(cache->uncacheable_loads(), 2);
  EXPECT_EQ(cache->resident_bytes(), 0u);
  EXPECT_EQ(cache->hits(), 0);
  EXPECT_FALSE(cache->memory_pressure());

  // Correctness is unchanged: an uncached model predicts like the
  // eagerly loaded one.
  HexGrid grid(75.0);
  const CellId s = grid.CellOf({120, 150});
  const CellId d = grid.CellOf({380, 150});
  const auto want = eager_->SelectModel(sw)->PredictMasked({s}, {d}, 3);
  const auto got = first->PredictMasked({s}, {d}, 3);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].cell, got[i].cell);
  }
}

TEST_F(CacheBudgetTest, TrimEvictsUnpinnedEntriesDownToBudget) {
  const uint64_t total = TotalModelBytes();
  ASSERT_GT(total, 1u);
  auto repo = LoadLazy(/*max_models=*/0, /*max_bytes=*/total - 1);
  ASSERT_NE(repo, nullptr);
  const ShardedModelCache* cache = repo->cache();
  ASSERT_NE(cache, nullptr);

  // Load every model, holding no handles. Insert-time eviction only
  // walks the inserting shard, so cross-shard residency can briefly
  // exceed the budget...
  for (const BBox& box : ModelBoxes()) {
    EXPECT_NE(repo->SelectModel(box), nullptr);
  }
  // ...until a trim pass (the engine runs one per health/stats probe)
  // reclaims every unpinned byte above the line.
  cache->TrimToBudget();
  EXPECT_LE(cache->resident_bytes(), cache->max_resident_bytes());
  EXPECT_FALSE(cache->memory_pressure());
  EXPECT_GT(cache->evictions(), 0);

  // Evicted models fault back in on demand and predict identically.
  HexGrid grid(75.0);
  const CellId s = grid.CellOf({120, 150});
  const CellId d = grid.CellOf({380, 150});
  for (const BBox& box : ModelBoxes()) {
    const ModelHandle reloaded = repo->SelectModel(box);
    ASSERT_NE(reloaded, nullptr);
    const auto want = eager_->SelectModel(box)->PredictMasked({s}, {d}, 3);
    const auto got = reloaded->PredictMasked({s}, {d}, 3);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].cell, got[i].cell);
    }
  }
}

TEST_F(CacheBudgetTest, PinnedModelsSurviveTrimUntilReleased) {
  const uint64_t total = TotalModelBytes();
  ASSERT_GT(total, 1u);
  auto repo = LoadLazy(/*max_models=*/0, /*max_bytes=*/total - 1);
  ASSERT_NE(repo, nullptr);
  const ShardedModelCache* cache = repo->cache();
  ASSERT_NE(cache, nullptr);

  // Pin every model, as in-flight imputations would.
  std::vector<ModelHandle> pins;
  for (const BBox& box : ModelBoxes()) {
    ModelHandle model = repo->SelectModel(box);
    ASSERT_NE(model, nullptr);
    pins.push_back(std::move(model));
  }

  // Over budget with everything pinned: trimming must NOT unload a
  // pinned model (the handle keeps the weights alive — dropping the
  // cache entry would reclaim nothing) and must say why it could not.
  cache->TrimToBudget();
  EXPECT_EQ(cache->evictions(), 0);
  EXPECT_EQ(cache->resident_bytes(), total);
  EXPECT_TRUE(cache->memory_pressure());
  EXPECT_GT(cache->pinned_skips(), 0);
  for (const ModelHandle& pin : pins) {
    EXPECT_NE(pin, nullptr);  // still serving
  }

  // Pins released: the next trim reclaims promptly.
  pins.clear();
  cache->TrimToBudget();
  EXPECT_LE(cache->resident_bytes(), cache->max_resident_bytes());
  EXPECT_FALSE(cache->memory_pressure());
  EXPECT_GT(cache->evictions(), 0);
}

// ---- engine-level RESOURCE_PRESSURE signals ---------------------------

KamelOptions EngineFixtureOptions() {
  KamelOptions options;
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 10;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.train.steps = 30;
  options.bert.train.batch_size = 4;
  options.seed = 42;
  return options;
}

class ResourceEngineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec()));
    Kamel system(EngineFixtureOptions());
    ASSERT_TRUE(system.Train(scenario_->train).ok());
    snapshot_path_ =
        new std::string(testing::TempDir() + "/resource_engine_snapshot.bin");
    ASSERT_TRUE(system.SaveToFile(*snapshot_path_).ok());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete snapshot_path_;
    scenario_ = nullptr;
    snapshot_path_ = nullptr;
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();
    IoWatchdog::Instance().ResetCounters();
  }

  /// A thin box at the center of a leaf cell whose single model resolves
  /// at level 1 on a clean system.
  static std::optional<BBox> FindServableLeafBox(
      const ModelRepository& repo) {
    const Pyramid& pyramid = repo.pyramid();
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        const BBox cell = pyramid.CellBounds({1, x, y});
        BBox probe;
        probe.Extend(Vec2{(cell.min_x + cell.max_x) / 2,
                          (cell.min_y + cell.max_y) / 2});
        const auto selection = repo.SelectModelLadder(probe);
        if (selection.model != nullptr && selection.served_level == 1) {
          return probe;
        }
      }
    }
    return std::nullopt;
  }

  /// Distinct probe boxes: every level-1 cell center plus the world.
  static std::vector<BBox> ProbeBoxes(const Pyramid& pyramid) {
    std::vector<BBox> boxes;
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        const BBox cell = pyramid.CellBounds({1, x, y});
        BBox probe;
        probe.Extend(Vec2{(cell.min_x + cell.max_x) / 2,
                          (cell.min_y + cell.max_y) / 2});
        boxes.push_back(probe);
      }
    }
    boxes.push_back(pyramid.CellBounds({0, 0, 0}));
    return boxes;
  }

  static SimScenario* scenario_;
  static std::string* snapshot_path_;
};

SimScenario* ResourceEngineTest::scenario_ = nullptr;
std::string* ResourceEngineTest::snapshot_path_ = nullptr;

TEST_F(ResourceEngineTest, StuckIoSurfacesAsResourcePressure) {
  Kamel system(EngineFixtureOptions());
  ASSERT_TRUE(system.LoadFromFile(*snapshot_path_).ok());
  auto snapshot = system.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot, {.num_threads = 1});
  ASSERT_EQ(engine.health(), HealthState::kServing);
  EXPECT_FALSE(engine.stats().resource_pressure);

  // A disk operation hangs past its watchdog budget on another thread —
  // the probe thread must see it without anyone returning from the hang.
  std::thread hung([] {
    auto watch = IoWatchdog::Instance().Watch("wal.fsync", 0.01);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  });
  bool degraded_seen = false;
  bool pressure_seen = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!(degraded_seen && pressure_seen) &&
         std::chrono::steady_clock::now() < deadline) {
    degraded_seen =
        degraded_seen || engine.health() == HealthState::kDegraded;
    const EngineStats stats = engine.stats();
    pressure_seen =
        pressure_seen || (stats.resource_pressure && stats.io_stuck > 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hung.join();
  EXPECT_TRUE(degraded_seen) << "stuck IO never degraded engine health";
  EXPECT_TRUE(pressure_seen) << "stuck IO never surfaced in EngineStats";

  // The hang cleared: health recovers by itself, the stall stays counted.
  EXPECT_EQ(engine.health(), HealthState::kServing);
  const EngineStats after = engine.stats();
  EXPECT_EQ(after.io_stuck, 0);
  EXPECT_GE(after.io_stalls, 1);
  EXPECT_FALSE(after.resource_pressure);
}

TEST_F(ResourceEngineTest, MemoryPressureDegradesUntilPinsRelease) {
  // Probe pass: measure the total byte charge of every reachable model.
  uint64_t total = 0;
  {
    KamelOptions options = EngineFixtureOptions();
    options.max_resident_models = 64;
    Kamel probe(options);
    ASSERT_TRUE(probe.LoadFromFile(*snapshot_path_).ok());
    auto snapshot = probe.Snapshot();
    ASSERT_TRUE(snapshot.ok());
    const ModelRepository& repo = (*snapshot)->repository();
    std::set<const TrajBert*> distinct;
    for (const BBox& box : ProbeBoxes(repo.pyramid())) {
      const ModelHandle model = repo.SelectModel(box);
      if (model != nullptr) distinct.insert(model.get());
    }
    ASSERT_GE(distinct.size(), 2u)
        << "fixture needs at least two demand-loadable models";
    total = repo.cache()->resident_bytes();
  }
  ASSERT_GT(total, 1u);

  KamelOptions options = EngineFixtureOptions();
  options.max_resident_bytes = total - 1;
  Kamel system(options);
  ASSERT_TRUE(system.LoadFromFile(*snapshot_path_).ok());
  auto snapshot = system.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const ModelRepository& repo = (*snapshot)->repository();
  ServingEngine engine(*snapshot, {.num_threads = 1});

  // Pin every model past the budget, as concurrent imputations would.
  std::vector<ModelHandle> pins;
  for (const BBox& box : ProbeBoxes(repo.pyramid())) {
    ModelHandle model = repo.SelectModel(box);
    if (model != nullptr) pins.push_back(std::move(model));
  }
  // The health probe trims first — pressure that survives a trim means
  // every over-budget byte is pinned, which is the real signal.
  EXPECT_EQ(engine.health(), HealthState::kDegraded);
  EngineStats stats = engine.stats();
  EXPECT_TRUE(stats.resource_pressure);
  EXPECT_GT(stats.cache_resident_bytes, options.max_resident_bytes);

  // Imputations finish, pins release: the next probe reclaims and the
  // engine returns to SERVING on its own.
  pins.clear();
  EXPECT_EQ(engine.health(), HealthState::kServing);
  stats = engine.stats();
  EXPECT_FALSE(stats.resource_pressure);
  EXPECT_LE(stats.cache_resident_bytes, options.max_resident_bytes);
}

TEST_F(ResourceEngineTest, SlowLoadTripsBreakerAndDegradesServing) {
  const int64_t stalls_before = IoWatchdog::Instance().stall_events();
  KamelOptions options = EngineFixtureOptions();
  options.max_resident_models = 64;
  options.model_load_retries = 0;
  options.model_load_backoff_ms = 0.01;
  options.model_breaker_cooldown_s = 60.0;
  options.model_load_stall_budget_s = 0.01;  // slow IO is failed IO

  // Control run (default stall budget): find a leaf that serves cleanly.
  std::optional<BBox> leaf_box;
  {
    Kamel control(EngineFixtureOptions());
    ASSERT_TRUE(control.LoadFromFile(*snapshot_path_).ok());
    auto snapshot = control.Snapshot();
    ASSERT_TRUE(snapshot.ok());
    KamelOptions lazy = EngineFixtureOptions();
    lazy.max_resident_models = 64;
    Kamel lazy_control(lazy);
    ASSERT_TRUE(lazy_control.LoadFromFile(*snapshot_path_).ok());
    auto lazy_snapshot = lazy_control.Snapshot();
    ASSERT_TRUE(lazy_snapshot.ok());
    leaf_box = FindServableLeafBox((*lazy_snapshot)->repository());
  }
  ASSERT_TRUE(leaf_box.has_value())
      << "fixture produced no demand-loadable leaf model";

  Kamel system(options);
  ASSERT_TRUE(system.LoadFromFile(*snapshot_path_).ok());
  auto snapshot = system.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const ModelRepository& repo = (*snapshot)->repository();
  const ShardedModelCache* cache = repo.cache();
  ASSERT_NE(cache, nullptr);

  {
    // The load SUCCEEDS but blows its stall budget: the model is served
    // this once (uncached), and the breaker opens anyway — a load that
    // slow is indistinguishable from a dying disk.
    ScopedFault slow("model.load.slow", /*skip=*/0, /*count=*/1);
    const auto selection = repo.SelectModelLadder(*leaf_box);
    ASSERT_NE(selection.model, nullptr);
    EXPECT_EQ(selection.served_level, selection.finest_level);
  }
  EXPECT_EQ(cache->breaker_opens(), 1);
  EXPECT_EQ(cache->open_breakers(), 1);
  EXPECT_GE(IoWatchdog::Instance().stall_events(), stalls_before + 1);

  // Follow-ups short-circuit on the open breaker (the slow model was
  // deliberately NOT cached) and degrade to a pyramid ancestor.
  const auto degraded = repo.SelectModelLadder(*leaf_box);
  ASSERT_NE(degraded.model, nullptr);
  EXPECT_TRUE(degraded.degraded());
  EXPECT_GE(cache->breaker_short_circuits(), 1);

  // The engine reports the episode: DEGRADED health, stall counted.
  ServingEngine engine(*snapshot, {.num_threads = 1});
  EXPECT_EQ(engine.health(), HealthState::kDegraded);
  EXPECT_GE(engine.stats().io_stalls, 1);
}

}  // namespace
}  // namespace kamel
