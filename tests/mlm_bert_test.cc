#include <gtest/gtest.h>

#include "bert/traj_bert.h"
#include "bert/vocab.h"
#include "nn/mlm_trainer.h"

namespace kamel {
namespace {

TEST(VocabTest, SpecialTokenLayout) {
  Vocab vocab;
  EXPECT_EQ(vocab.size(), Vocab::kFirstContentId);
  EXPECT_EQ(vocab.num_cells(), 0);
  EXPECT_FALSE(vocab.IsContentToken(Vocab::kMaskId));
  EXPECT_EQ(vocab.CellOf(Vocab::kClsId), kInvalidCellId);
}

TEST(VocabTest, AddIsIdempotentAndOrdered) {
  Vocab vocab;
  const int32_t a = vocab.AddCell(100);
  const int32_t b = vocab.AddCell(200);
  EXPECT_EQ(vocab.AddCell(100), a);
  EXPECT_EQ(a, Vocab::kFirstContentId);
  EXPECT_EQ(b, Vocab::kFirstContentId + 1);
  EXPECT_EQ(vocab.TokenOf(100), a);
  EXPECT_EQ(vocab.CellOf(b), 200u);
  EXPECT_EQ(vocab.size(), Vocab::kFirstContentId + 2);
}

TEST(VocabTest, UnknownCellMapsToUnk) {
  Vocab vocab;
  vocab.AddCell(1);
  EXPECT_EQ(vocab.TokenOf(999), Vocab::kUnkId);
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab vocab;
  vocab.AddCell(42);
  vocab.AddCell(7);
  BinaryWriter writer;
  vocab.Save(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded = Vocab::Load(&reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TokenOf(42), vocab.TokenOf(42));
  EXPECT_EQ(loaded->TokenOf(7), vocab.TokenOf(7));
  EXPECT_EQ(loaded->size(), vocab.size());
}

TEST(MakeStatementTest, WrapsWithClsSep) {
  Vocab vocab;
  vocab.AddCell(10);
  vocab.AddCell(20);
  const std::vector<int32_t> statement = MakeStatement({10, 20, 10}, vocab);
  ASSERT_EQ(statement.size(), 5u);
  EXPECT_EQ(statement.front(), Vocab::kClsId);
  EXPECT_EQ(statement.back(), Vocab::kSepId);
  EXPECT_EQ(statement[1], statement[3]);
}

TEST(MlmBatchTest, InvariantsHold) {
  Rng rng(1);
  std::vector<std::vector<int32_t>> sequences;
  for (int s = 0; s < 10; ++s) {
    std::vector<int32_t> seq = {2};  // CLS
    for (int t = 0; t < 12; ++t) seq.push_back(5 + (s + t) % 20);
    seq.push_back(3);  // SEP
    sequences.push_back(seq);
  }
  nn::MlmTrainOptions options;
  options.batch_size = 8;
  options.mask_prob = 0.15;
  const nn::MlmTokenLayout layout{0, 4, 5};
  const nn::MlmBatch batch =
      nn::BuildMlmBatch(sequences, layout, options, 16, 25, &rng);

  EXPECT_EQ(batch.batch, 8);
  EXPECT_LE(batch.seq_len, 16);
  int masked = 0;
  for (int64_t i = 0; i < batch.batch * batch.seq_len; ++i) {
    const size_t idx = static_cast<size_t>(i);
    if (batch.key_mask[idx] == 0.0f) {
      EXPECT_EQ(batch.ids[idx], layout.pad_id);   // padding is PAD
      EXPECT_EQ(batch.labels[idx], -1);           // and never labeled
    }
    if (batch.labels[idx] >= 0) {
      ++masked;
      EXPECT_GE(batch.labels[idx], layout.first_content_id)
          << "only content tokens are masked";
      // At a labeled position, the visible id is MASK, a random content
      // token, or the original token — never a special other than MASK.
      EXPECT_TRUE(batch.ids[idx] == layout.mask_id ||
                  batch.ids[idx] >= layout.first_content_id);
    }
  }
  EXPECT_GT(masked, 0);
}

TEST(MlmBatchTest, EveryStatementGetsAtLeastOneMask) {
  Rng rng(2);
  std::vector<std::vector<int32_t>> sequences = {{2, 5, 6, 3}};
  nn::MlmTrainOptions options;
  options.batch_size = 32;
  options.mask_prob = 0.0;  // Bernoulli would never mask; fallback must.
  const nn::MlmTokenLayout layout{0, 4, 5};
  const nn::MlmBatch batch =
      nn::BuildMlmBatch(sequences, layout, options, 8, 10, &rng);
  for (int64_t b = 0; b < batch.batch; ++b) {
    int masked = 0;
    for (int64_t t = 0; t < batch.seq_len; ++t) {
      masked += batch.labels[static_cast<size_t>(b * batch.seq_len + t)] >= 0;
    }
    EXPECT_EQ(masked, 1) << "statement " << b;
  }
}

TEST(MlmBatchTest, GapDeletionProducesSingleMaskBridges) {
  Rng rng(5);
  // One long statement; force gap-deletion on every draw.
  std::vector<int32_t> seq = {2};
  for (int t = 0; t < 20; ++t) seq.push_back(5 + t);
  seq.push_back(3);
  nn::MlmTrainOptions options;
  options.batch_size = 16;
  options.crop_prob = 0.0;
  options.gap_deletion_prob = 1.0;
  options.gap_min_len = 2;
  options.gap_max_len = 6;
  const nn::MlmTokenLayout layout{0, 4, 5};
  const nn::MlmBatch batch =
      nn::BuildMlmBatch({seq}, layout, options, 32, 30, &rng);

  for (int64_t b = 0; b < batch.batch; ++b) {
    int masks = 0;
    int labels = 0;
    int real = 0;
    int64_t mask_pos = -1;
    for (int64_t t = 0; t < batch.seq_len; ++t) {
      const size_t idx = static_cast<size_t>(b * batch.seq_len + t);
      if (batch.key_mask[idx] == 0.0f) continue;
      ++real;
      if (batch.ids[idx] == layout.mask_id) {
        ++masks;
        mask_pos = t;
      }
      if (batch.labels[idx] >= 0) ++labels;
    }
    // Exactly one [MASK], exactly one label, at the same position, and
    // the statement shrank by gap_len - 1 tokens (2..6 -> 1).
    EXPECT_EQ(masks, 1) << b;
    EXPECT_EQ(labels, 1) << b;
    ASSERT_GE(mask_pos, 0);
    const size_t mask_idx = static_cast<size_t>(b * batch.seq_len + mask_pos);
    EXPECT_GE(batch.labels[mask_idx], layout.first_content_id);
    EXPECT_GE(real, static_cast<int>(seq.size()) - 6 + 1);
    EXPECT_LE(real, static_cast<int>(seq.size()) - 2 + 1);
    // The label is one of the two tokens adjacent to the gap in the
    // original statement: its value must NOT appear in the visible ids
    // (it was deleted) and must be adjacent to the mask's neighbors in
    // the original ordering.
    const int32_t left_of_mask =
        batch.ids[static_cast<size_t>(b * batch.seq_len + mask_pos - 1)];
    const int32_t label_value = batch.labels[mask_idx];
    bool found = false;
    for (size_t t = 0; t + 1 < seq.size(); ++t) {
      if (seq[t] == left_of_mask &&
          (seq[t + 1] == label_value ||
           (t + 2 < seq.size() && label_value > seq[t + 1]))) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(MlmBatchTest, GapDeletionFallsBackOnShortStatements) {
  Rng rng(6);
  nn::MlmTrainOptions options;
  options.batch_size = 8;
  options.gap_deletion_prob = 1.0;  // but statements are too short
  options.mask_prob = 0.15;
  const nn::MlmTokenLayout layout{0, 4, 5};
  const nn::MlmBatch batch =
      nn::BuildMlmBatch({{2, 5, 6, 3}}, layout, options, 16, 10, &rng);
  // Standard masking fallback still yields at least one label per row.
  for (int64_t b = 0; b < batch.batch; ++b) {
    int labels = 0;
    for (int64_t t = 0; t < batch.seq_len; ++t) {
      labels +=
          batch.labels[static_cast<size_t>(b * batch.seq_len + t)] >= 0;
    }
    EXPECT_GE(labels, 1);
  }
}

TEST(MlmBatchTest, LongSequencesAreCropped) {
  Rng rng(3);
  std::vector<int32_t> long_seq(40);
  for (size_t i = 0; i < long_seq.size(); ++i) {
    long_seq[i] = static_cast<int32_t>(5 + i);
  }
  nn::MlmTrainOptions options;
  options.batch_size = 4;
  const nn::MlmTokenLayout layout{0, 4, 5};
  const nn::MlmBatch batch =
      nn::BuildMlmBatch({long_seq}, layout, options, 16, 50, &rng);
  EXPECT_EQ(batch.seq_len, 16);
}

TEST(TrainMlmTest, RejectsEmptyCorpus) {
  nn::BertConfig config;
  config.vocab_size = 10;
  config.d_model = 8;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 16;
  nn::BertModel model(config, 1);
  const nn::MlmTokenLayout layout{0, 4, 5};
  EXPECT_FALSE(nn::TrainMlm(&model, {}, layout, {}).ok());
}

TEST(TrainMlmTest, LearnsDeterministicPattern) {
  // Corpus: the fixed cyclic statement 5 6 7 8 9 5 6 7 8 9. A trained
  // model must assign the true token the top probability at any masked
  // position.
  nn::BertConfig config;
  config.vocab_size = 10;
  config.d_model = 16;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 32;
  config.max_seq_len = 12;
  config.dropout = 0.0;
  nn::BertModel model(config, 5);

  std::vector<std::vector<int32_t>> corpus;
  for (int s = 0; s < 8; ++s) {
    std::vector<int32_t> seq = {2};
    for (int t = 0; t < 10; ++t) seq.push_back(5 + t % 5);
    corpus.push_back(seq);
  }
  nn::MlmTrainOptions options;
  options.steps = 300;
  options.batch_size = 8;
  options.peak_lr = 3e-3;
  options.warmup_steps = 20;
  const nn::MlmTokenLayout layout{0, 4, 5};
  auto stats = nn::TrainMlm(&model, corpus, layout, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->final_loss, 0.8) << "MLM loss did not drop";

  // Mask position 3 (true token 7): [CLS] 5 6 [MASK] 8 9 ...
  std::vector<int32_t> ids = {2, 5, 6, 4, 8, 9, 5, 6, 7, 8, 9};
  const std::vector<float> mask(ids.size(), 1.0f);
  const nn::Tensor logits = model.Forward(
      ids, mask, 1, static_cast<int64_t>(ids.size()), false);
  const std::vector<float> probs = model.PositionProbabilities(logits, 3);
  int best = 0;
  for (size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[static_cast<size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  EXPECT_EQ(best, 7);
}

TEST(TrajBertTest, TrainRejectsEmptyCorpus) {
  TrajBertOptions options;
  EXPECT_FALSE(TrajBert::Train({}, options, 1).ok());
}

class TrajBertLineTest : public testing::Test {
 protected:
  // Corpus of cell-id walks along a line 100..119 (forward and backward)
  // — the simplest "road". Predictions between neighbors should stay on
  // the line.
  static TrajBertOptions Options() {
    TrajBertOptions options;
    options.encoder.d_model = 32;
    options.encoder.num_heads = 2;
    options.encoder.num_layers = 2;
    options.encoder.ffn_dim = 64;
    options.encoder.max_seq_len = 24;
    options.encoder.dropout = 0.0;
    options.train.steps = 1500;
    options.train.batch_size = 8;
    options.train.peak_lr = 1e-3;
    options.train.warmup_steps = 60;
    return options;
  }

  static std::vector<std::vector<CellId>> LineCorpus() {
    std::vector<std::vector<CellId>> corpus;
    for (int repeat = 0; repeat < 6; ++repeat) {
      std::vector<CellId> fwd;
      std::vector<CellId> bwd;
      for (int c = 0; c < 20; ++c) {
        fwd.push_back(static_cast<CellId>(100 + c));
        bwd.push_back(static_cast<CellId>(119 - c));
      }
      corpus.push_back(fwd);
      corpus.push_back(bwd);
    }
    return corpus;
  }
};

TEST_F(TrajBertLineTest, PredictsTheMissingLineCell) {
  auto bert = TrajBert::Train(LineCorpus(), Options(), 9);
  ASSERT_TRUE(bert.ok());
  EXPECT_EQ((*bert)->vocab().num_cells(), 20);

  // [MASK] between 104 and 106 must be 105.
  const std::vector<Candidate> candidates =
      (*bert)->PredictMasked({102, 103, 104}, {106, 107, 108}, 3);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].cell, 105u);
  EXPECT_GT(candidates[0].prob, 0.3);
  // Probabilities sorted descending.
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].prob, candidates[i].prob);
  }
}

TEST_F(TrajBertLineTest, SaveLoadPreservesPredictions) {
  auto bert = TrajBert::Train(LineCorpus(), Options(), 9);
  ASSERT_TRUE(bert.ok());
  BinaryWriter writer;
  (*bert)->Save(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded = TrajBert::Load(&reader);
  ASSERT_TRUE(loaded.ok());

  const auto before = (*bert)->PredictMasked({104}, {106}, 5);
  const auto after = (*loaded)->PredictMasked({104}, {106}, 5);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].cell, after[i].cell);
    EXPECT_NEAR(before[i].prob, after[i].prob, 1e-6);
  }
}

TEST_F(TrajBertLineTest, CountsPredictCalls) {
  auto bert = TrajBert::Train(LineCorpus(), Options(), 9);
  ASSERT_TRUE(bert.ok());
  EXPECT_EQ((*bert)->num_predict_calls(), 0);
  (*bert)->PredictMasked({104}, {106}, 2);
  (*bert)->PredictMasked({104}, {106}, 2);
  EXPECT_EQ((*bert)->num_predict_calls(), 2);
}

}  // namespace
}  // namespace kamel
