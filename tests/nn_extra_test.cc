// Second-wave nn tests: position offsets, training-dynamics sanity, and
// determinism guarantees the rest of the system relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/mlm_trainer.h"
#include "nn/transformer.h"

namespace kamel::nn {
namespace {

BertConfig SmallConfig() {
  BertConfig config;
  config.vocab_size = 12;
  config.d_model = 8;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 16;
  config.max_seq_len = 10;
  config.dropout = 0.0;
  return config;
}

TEST(PositionOffsetTest, OffsetsChangeLogits) {
  BertModel model(SmallConfig(), 11);
  const std::vector<int32_t> ids = {2, 5, 6, 3};
  const std::vector<float> mask(4, 1.0f);
  const Tensor base = model.Forward(ids, mask, 1, 4, false);
  const std::vector<int32_t> offsets = {3};
  const Tensor shifted = model.Forward(ids, mask, 1, 4, false, &offsets);
  // Different position embeddings -> different logits.
  double diff = 0.0;
  for (int64_t i = 0; i < base.size(); ++i) {
    diff += std::fabs(base[i] - shifted[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(PositionOffsetTest, ZeroOffsetMatchesDefault) {
  BertModel model(SmallConfig(), 12);
  const std::vector<int32_t> ids = {2, 5, 6, 3};
  const std::vector<float> mask(4, 1.0f);
  const Tensor base = model.Forward(ids, mask, 1, 4, false);
  const std::vector<int32_t> offsets = {0};
  const Tensor same = model.Forward(ids, mask, 1, 4, false, &offsets);
  for (int64_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i], same[i]);
  }
}

TEST(PositionOffsetTest, PerRowOffsetsAreIndependent) {
  // Two identical rows with different offsets must produce different
  // logits for the same tokens.
  BertModel model(SmallConfig(), 13);
  const std::vector<int32_t> ids = {2, 5, 6, 3, 2, 5, 6, 3};
  const std::vector<float> mask(8, 1.0f);
  const std::vector<int32_t> offsets = {0, 4};
  const Tensor logits = model.Forward(ids, mask, 2, 4, false, &offsets);
  double diff = 0.0;
  const int64_t row = 4 * model.config().vocab_size;
  for (int64_t i = 0; i < row; ++i) {
    diff += std::fabs(logits[i] - logits[row + i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(ForwardDeterminismTest, EvalModeIsDeterministic) {
  BertModel model(SmallConfig(), 14);
  const std::vector<int32_t> ids = {2, 7, 4, 9, 3};
  const std::vector<float> mask(5, 1.0f);
  const Tensor a = model.Forward(ids, mask, 1, 5, false);
  const Tensor b = model.Forward(ids, mask, 1, 5, false);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ForwardDeterminismTest, SameSeedSameModel) {
  BertModel a(SmallConfig(), 15);
  BertModel b(SmallConfig(), 15);
  const std::vector<int32_t> ids = {2, 7, 4, 9, 3};
  const std::vector<float> mask(5, 1.0f);
  const Tensor la = a.Forward(ids, mask, 1, 5, false);
  const Tensor lb = b.Forward(ids, mask, 1, 5, false);
  for (int64_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(TrainingDynamicsTest, LossDecreasesOnRandomButLearnableData) {
  // Bigram-structured corpus: token x is always followed by (x+3) mod 6
  // within the content range; the model must beat the uniform baseline
  // log(6) ~ 1.79 clearly.
  std::vector<std::vector<int32_t>> corpus;
  Rng rng(55);
  for (int s = 0; s < 20; ++s) {
    std::vector<int32_t> seq = {2};
    int32_t tok = static_cast<int32_t>(5 + rng.NextUint64(6));
    for (int t = 0; t < 8; ++t) {
      seq.push_back(tok);
      tok = 5 + (tok - 5 + 3) % 6;
    }
    corpus.push_back(seq);
  }
  BertConfig config = SmallConfig();
  config.d_model = 16;
  config.ffn_dim = 32;
  BertModel model(config, 16);
  MlmTrainOptions options;
  options.steps = 250;
  options.batch_size = 8;
  options.peak_lr = 3e-3;
  options.warmup_steps = 20;
  const MlmTokenLayout layout{0, 4, 5};
  auto stats = TrainMlm(&model, corpus, layout, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->final_loss, 1.2);
  EXPECT_GT(stats->seconds, 0.0);
  EXPECT_EQ(stats->steps, 250);
}

TEST(TrainingDynamicsTest, DeterministicGivenSeeds) {
  std::vector<std::vector<int32_t>> corpus = {
      {2, 5, 6, 7, 8, 3}, {2, 8, 7, 6, 5, 3}};
  const MlmTokenLayout layout{0, 4, 5};
  MlmTrainOptions options;
  options.steps = 40;
  options.batch_size = 4;

  BertModel a(SmallConfig(), 20);
  BertModel b(SmallConfig(), 20);
  ASSERT_TRUE(TrainMlm(&a, corpus, layout, options).ok());
  ASSERT_TRUE(TrainMlm(&b, corpus, layout, options).ok());
  auto pa = a.Params();
  auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
    for (int64_t j = 0; j < pa[i]->value.size(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]) << pa[i]->name;
    }
  }
}

TEST(TrainingDynamicsTest, DropoutOnlyAffectsTrainMode) {
  BertConfig config = SmallConfig();
  config.dropout = 0.3;
  BertModel model(config, 21);
  const std::vector<int32_t> ids = {2, 7, 4, 9, 3};
  const std::vector<float> mask(5, 1.0f);
  // Eval is deterministic even with dropout configured.
  const Tensor a = model.Forward(ids, mask, 1, 5, false);
  const Tensor b = model.Forward(ids, mask, 1, 5, false);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // Train mode applies noise.
  const Tensor t1 = model.Forward(ids, mask, 1, 5, true);
  double diff = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) diff += std::fabs(a[i] - t1[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(NumParametersTest, MatchesKnownFormulaAtBase) {
  // Sanity-check the parameter-count formula at a BERT-Base-like shape:
  // the paper reports ~165M trainable parameters at vocab 80K
  // (Section 8, with the MLM head tied to the embeddings). Our head is
  // untied, adding one extra d_model x vocab matrix, so the count lands
  // somewhat above the paper's.
  BertConfig config;
  config.vocab_size = 80000;
  config.d_model = 768;
  config.num_heads = 12;
  config.num_layers = 12;
  config.ffn_dim = 3072;
  config.max_seq_len = 512;
  const double params = static_cast<double>(config.NumParameters());
  EXPECT_GT(params, 140e6);
  EXPECT_LT(params, 235e6);
}

}  // namespace
}  // namespace kamel::nn
