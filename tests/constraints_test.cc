// Spatial Constraints module tests: speed ellipse, direction cones on the
// paper's four road cases (Figure 5), and cycle prevention (Section 5.2).
#include <gtest/gtest.h>

#include "core/spatial_constraints.h"
#include "grid/hex_grid.h"

namespace kamel {
namespace {

class ConstraintsTest : public testing::Test {
 protected:
  ConstraintsTest() : grid_(75.0) {
    options_.direction_cone_deg = 45.0;
    options_.cycle_window = 6;
    constraints_ =
        std::make_unique<SpatialConstraints>(&grid_, options_);
    constraints_->set_max_speed_mps(20.0);
  }

  SegmentContext HorizontalSegment(double gap_m, double duration_s) const {
    SegmentContext context;
    context.s = {grid_.CellOf({0.0, 0.0}), 0.0, {0.0, 0.0}, 0.0};
    context.d = {grid_.CellOf({gap_m, 0.0}), duration_s, {gap_m, 0.0}, 0.0};
    return context;
  }

  HexGrid grid_;
  KamelOptions options_;
  std::unique_ptr<SpatialConstraints> constraints_;
};

TEST_F(ConstraintsTest, SpeedEllipseAcceptsOnPathPoints) {
  // 20 m/s for 60 s = 1200 m budget; the segment is 800 m: mid-path
  // points are reachable.
  const SegmentContext ctx = HorizontalSegment(800.0, 60.0);
  EXPECT_TRUE(constraints_->SatisfiesSpeed(ctx, grid_.CellOf({400.0, 0.0})));
  EXPECT_TRUE(
      constraints_->SatisfiesSpeed(ctx, grid_.CellOf({400.0, 300.0})));
}

TEST_F(ConstraintsTest, SpeedEllipseRejectsUnreachable) {
  const SegmentContext ctx = HorizontalSegment(800.0, 60.0);
  // 400, 1500: focal sum ~ 1552+1676 >> 1200 + slack.
  EXPECT_FALSE(
      constraints_->SatisfiesSpeed(ctx, grid_.CellOf({400.0, 1500.0})));
}

TEST_F(ConstraintsTest, SpeedDisabledWhenUnknown) {
  constraints_->set_max_speed_mps(0.0);
  const SegmentContext ctx = HorizontalSegment(800.0, 1.0);
  EXPECT_TRUE(
      constraints_->SatisfiesSpeed(ctx, grid_.CellOf({400.0, 9000.0})));
}

TEST_F(ConstraintsTest, DirectionConeRejectsBehindS) {
  // t1 is west of S (the vehicle came from the west): candidates west of
  // S are "going backwards".
  SegmentContext ctx = HorizontalSegment(600.0, 60.0);
  ctx.prev = TokenPoint{grid_.CellOf({-300.0, 0.0}), -30.0,
                        {-300.0, 0.0}, 0.0};
  EXPECT_FALSE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({-200.0, 0.0})));
  // Within the 45-degree cone around the back direction: also rejected.
  EXPECT_FALSE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({-200.0, 150.0})));
  // Perpendicular escape is fine.
  EXPECT_TRUE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({100.0, 400.0})));
  // And so is the path towards D.
  EXPECT_TRUE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({300.0, 0.0})));
}

TEST_F(ConstraintsTest, DirectionConeRejectsBeyondD) {
  // t2 is east of D (the vehicle continues east): candidates past D
  // toward t2 jump ahead.
  SegmentContext ctx = HorizontalSegment(600.0, 60.0);
  ctx.next = TokenPoint{grid_.CellOf({900.0, 0.0}), 90.0, {900.0, 0.0}, 0.0};
  EXPECT_FALSE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({800.0, 0.0})));
  EXPECT_TRUE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({300.0, 0.0})));
}

TEST_F(ConstraintsTest, UTurnKeepsMidCandidates) {
  // Figure 5(c): a U-turn — t1 and t2 lie on the same side; the far end
  // of the hairpin must stay acceptable.
  SegmentContext ctx;
  ctx.s = {grid_.CellOf({0.0, 0.0}), 0.0, {0.0, 0.0}, 0.0};
  ctx.d = {grid_.CellOf({0.0, -150.0}), 60.0, {0.0, -150.0}, 0.0};
  ctx.prev = TokenPoint{grid_.CellOf({-400.0, 0.0}), -40.0,
                        {-400.0, 0.0}, 0.0};
  ctx.next = TokenPoint{grid_.CellOf({-400.0, -150.0}), 100.0,
                        {-400.0, -150.0}, 0.0};
  // The turn apex east of S/D is allowed...
  EXPECT_TRUE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({250.0, -75.0})));
  // ...but going back along the incoming road is not.
  EXPECT_FALSE(
      constraints_->SatisfiesDirection(ctx, grid_.CellOf({-250.0, 0.0})));
}

TEST_F(ConstraintsTest, FilterDropsViolatorsKeepsOrder) {
  SegmentContext ctx = HorizontalSegment(600.0, 60.0);
  ctx.prev = TokenPoint{grid_.CellOf({-300.0, 0.0}), -30.0,
                        {-300.0, 0.0}, 0.0};
  const std::vector<Candidate> candidates = {
      {grid_.CellOf({150.0, 0.0}), 0.5},    // good
      {grid_.CellOf({-200.0, 0.0}), 0.3},   // behind S
      {grid_.CellOf({300.0, 0.0}), 0.2},    // good
      {grid_.CellOf({400.0, 5000.0}), 0.1}, // outside ellipse
  };
  const std::vector<Candidate> kept =
      constraints_->Filter(ctx, candidates);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].cell, candidates[0].cell);
  EXPECT_EQ(kept[1].cell, candidates[2].cell);
}

TEST_F(ConstraintsTest, FilterPassThroughWhenDisabled) {
  KamelOptions disabled = options_;
  disabled.enable_constraints = false;
  SpatialConstraints off(&grid_, disabled);
  off.set_max_speed_mps(20.0);
  SegmentContext ctx = HorizontalSegment(600.0, 60.0);
  const std::vector<Candidate> candidates = {
      {grid_.CellOf({400.0, 5000.0}), 0.1}};
  EXPECT_EQ(off.Filter(ctx, candidates).size(), 1u);
}

TEST(CycleTest, TrivialRepeatIsDetected) {
  // x=1: the same token twice in a row.
  EXPECT_EQ(SpatialConstraints::DetectSuffixCycle({1, 2, 3, 3}, 6), 1);
  EXPECT_EQ(SpatialConstraints::DetectSuffixCycle({1, 2, 3}, 6), 0);
}

TEST(CycleTest, LongerCyclesDetected) {
  // x=2: ...5 6 5 6.
  EXPECT_EQ(SpatialConstraints::DetectSuffixCycle({1, 5, 6, 5, 6}, 6), 2);
  // x=3: ...2 3 4 2 3 4.
  EXPECT_EQ(
      SpatialConstraints::DetectSuffixCycle({9, 2, 3, 4, 2, 3, 4}, 6), 3);
}

TEST(CycleTest, WindowBoundsDetection) {
  // A length-4 cycle is invisible with window 3.
  const std::vector<CellId> cells = {1, 2, 3, 4, 1, 2, 3, 4};
  EXPECT_EQ(SpatialConstraints::DetectSuffixCycle(cells, 3), 0);
  EXPECT_EQ(SpatialConstraints::DetectSuffixCycle(cells, 6), 4);
}

TEST(CycleTest, OverpassRevisitIsNotACycle) {
  // Figure 5(d): a token may appear twice without any repeated block —
  // the overpass route S t3 t6 t7 t3' D where t3 recurs non-adjacently.
  const std::vector<CellId> route = {100, 3, 6, 7, 8, 3, 9};
  EXPECT_EQ(SpatialConstraints::DetectSuffixCycle(route, 6), 0);
  for (size_t pos = 0; pos < route.size(); ++pos) {
    EXPECT_EQ(SpatialConstraints::DetectCycleAround(route, pos, 6), 0);
  }
}

TEST(CycleTest, DetectAroundInteriorInsertion) {
  // Inserting mid-sequence creates an adjacent repeat not at the suffix.
  const std::vector<CellId> cells = {1, 2, 3, 2, 3, 9, 8};
  // The repeat [2,3][2,3] covers positions 1..4.
  EXPECT_GT(SpatialConstraints::DetectCycleAround(cells, 3, 6), 0);
  // Far from the repeat, nothing is reported.
  EXPECT_EQ(SpatialConstraints::DetectCycleAround(cells, 6, 2), 0);
}

}  // namespace
}  // namespace kamel
