// Integration tests for durable ingestion: WAL-backed Submit, crash
// recovery through OpenDurableIngestion, the retained-pending fix for
// mid-batch training failures, and checkpoint-driven log trimming.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/fault_injection.h"
#include "core/maintenance.h"
#include "io/trajectory_csv.h"
#include "sim/datasets.h"

namespace kamel {
namespace {

namespace fs = std::filesystem;

KamelOptions TinyOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 40;
  options.bert.encoder.d_model = 8;
  options.bert.encoder.num_heads = 2;
  options.bert.encoder.num_layers = 1;
  options.bert.encoder.ffn_dim = 16;
  options.bert.encoder.max_seq_len = 16;
  options.bert.train.steps = 30;
  options.bert.train.batch_size = 4;
  return options;
}

MaintenanceOptions TinyPolicy() {
  MaintenanceOptions policy;
  policy.min_batch_trajectories = 8;
  policy.min_batch_points = 100000;
  return policy;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

/// Byte-level fingerprint of what the system would serve for `probes`.
std::string ImputeFingerprint(Kamel* system,
                              const TrajectoryDataset& probes) {
  auto imputed = system->ImputeBatch(probes);
  EXPECT_TRUE(imputed.ok()) << imputed.status().message();
  if (!imputed.ok()) return "";
  TrajectoryDataset out;
  for (const ImputedTrajectory& one : *imputed) {
    out.trajectories.push_back(one.trajectory);
  }
  return io::WriteCsvString(out);
}

TEST(DurabilityTest, PendingSubmitsSurviveACrash) {
  const std::string dir = FreshDir("durability_pending");
  const std::string checkpoint = dir + "/checkpoint.bin";
  const WalOptions wal_options{.dir = dir + "/wal"};
  const SimScenario scenario = BuildScenario(MiniSpec(51));

  {
    Kamel system(TinyOptions());
    MaintenanceScheduler scheduler(&system, TinyPolicy());
    auto wal = OpenDurableIngestion(&system, &scheduler, wal_options,
                                    checkpoint);
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          scheduler.Submit(scenario.train.trajectories[i]).ok());
    }
    EXPECT_EQ(scheduler.pending_trajectories(), 5u);
    // Crash: the objects die with five acknowledged submits still
    // buffered, nothing trained, no checkpoint on disk.
  }

  Kamel system(TinyOptions());
  MaintenanceScheduler scheduler(&system, TinyPolicy());
  IngestRecoveryReport report;
  auto wal = OpenDurableIngestion(&system, &scheduler, wal_options,
                                  checkpoint, &report);
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.submits_replayed, 5u);
  EXPECT_EQ(report.batches_retrained, 0u);
  EXPECT_EQ(scheduler.pending_trajectories(), 5u);
  EXPECT_FALSE(system.trained());

  // The restored batch is live: three more submits cross the threshold
  // and train exactly the eight acknowledged trajectories.
  for (int i = 5; i < 8; ++i) {
    ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[i]).ok());
  }
  EXPECT_TRUE(system.trained());
  EXPECT_EQ(scheduler.batches_trained(), 1);
  EXPECT_EQ(system.ingested().size(), system.store().size());
}

TEST(DurabilityTest, RecoveryReproducesImputationByteForByte) {
  const SimScenario scenario = BuildScenario(MiniSpec(51));
  TrajectoryDataset probes;
  for (size_t i = 0; i < 4 && i < scenario.test.trajectories.size(); ++i) {
    probes.trajectories.push_back(scenario.test.trajectories[i]);
  }
  ASSERT_FALSE(probes.trajectories.empty());

  // Reference: a process that never crashes. No checkpoint path, so the
  // whole history stays in the log.
  std::string reference;
  {
    const std::string dir = FreshDir("durability_bytes_ref");
    Kamel system(TinyOptions());
    MaintenanceScheduler scheduler(&system, TinyPolicy());
    auto wal = OpenDurableIngestion(&system, &scheduler,
                                    {.dir = dir + "/wal"}, "");
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          scheduler.Submit(scenario.train.trajectories[i]).ok());
    }
    ASSERT_TRUE(system.trained());
    reference = ImputeFingerprint(&system, probes);
    ASSERT_FALSE(reference.empty());
  }

  // Crashed twin: same submits, then the process dies after training
  // (one marker and two pending submits in the log). Recovery re-trains
  // the batch from the log through the normal Train path.
  const std::string dir = FreshDir("durability_bytes_crash");
  const WalOptions wal_options{.dir = dir + "/wal"};
  {
    Kamel system(TinyOptions());
    MaintenanceScheduler scheduler(&system, TinyPolicy());
    auto wal = OpenDurableIngestion(&system, &scheduler, wal_options, "");
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          scheduler.Submit(scenario.train.trajectories[i]).ok());
    }
    ASSERT_TRUE(system.trained());
  }
  Kamel recovered(TinyOptions());
  MaintenanceScheduler scheduler(&recovered, TinyPolicy());
  IngestRecoveryReport report;
  auto wal = OpenDurableIngestion(&recovered, &scheduler, wal_options, "",
                                  &report);
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  EXPECT_EQ(report.batches_retrained, 1u);
  EXPECT_EQ(report.submits_replayed, 10u);
  EXPECT_EQ(scheduler.pending_trajectories(), 2u);
  ASSERT_TRUE(recovered.trained());
  EXPECT_EQ(ImputeFingerprint(&recovered, probes), reference);
}

TEST(DurabilityTest, CheckpointShortensRecoveryAndPreservesOutput) {
  const SimScenario scenario = BuildScenario(MiniSpec(51));
  TrajectoryDataset probes;
  for (size_t i = 0; i < 4 && i < scenario.test.trajectories.size(); ++i) {
    probes.trajectories.push_back(scenario.test.trajectories[i]);
  }

  const std::string dir = FreshDir("durability_checkpoint");
  const std::string checkpoint = dir + "/checkpoint.bin";
  const WalOptions wal_options{.dir = dir + "/wal"};
  std::string reference;
  {
    Kamel system(TinyOptions());
    MaintenanceScheduler scheduler(&system, TinyPolicy());
    auto wal = OpenDurableIngestion(&system, &scheduler, wal_options,
                                    checkpoint);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          scheduler.Submit(scenario.train.trajectories[i]).ok());
    }
    ASSERT_TRUE(system.trained());
    EXPECT_TRUE(fs::exists(checkpoint));
    reference = ImputeFingerprint(&system, probes);
  }

  Kamel recovered(TinyOptions());
  MaintenanceScheduler scheduler(&recovered, TinyPolicy());
  IngestRecoveryReport report;
  auto wal = OpenDurableIngestion(&recovered, &scheduler, wal_options,
                                  checkpoint, &report);
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  // The trained batch came back from the snapshot, not from re-training:
  // only the two tail submits needed replay.
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.batches_retrained, 0u);
  EXPECT_EQ(report.submits_replayed, 2u);
  EXPECT_EQ(scheduler.pending_trajectories(), 2u);
  ASSERT_TRUE(recovered.trained());
  EXPECT_EQ(recovered.ingested().size(), recovered.store().size());
  EXPECT_EQ(ImputeFingerprint(&recovered, probes), reference);

  // Training continues seamlessly after recovery: the restored tail plus
  // fresh submits form the next batch.
  for (int i = 10; i < 16; ++i) {
    ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[i]).ok());
  }
  EXPECT_EQ(scheduler.batches_trained(), 1);
  EXPECT_EQ(scheduler.pending_trajectories(), 0u);
}

TEST(DurabilityTest, TrainFailureRetainsPendingBatch) {
  // Regression for the dropped-batch bug: Flush used to swap the pending
  // batch out BEFORE Train, so a mid-batch failure silently discarded
  // every acknowledged trajectory in it.
  const SimScenario scenario = BuildScenario(MiniSpec(51));
  Kamel system(TinyOptions());
  MaintenanceScheduler scheduler(&system, TinyPolicy());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[i]).ok());
  }
  {
    ScopedFault fault("store.append");
    const Status failed =
        scheduler.Submit(scenario.train.trajectories[7]);
    EXPECT_FALSE(failed.ok());
  }
  // Every acknowledged trajectory is still queued.
  EXPECT_EQ(scheduler.pending_trajectories(), 8u);
  EXPECT_EQ(scheduler.batches_trained(), 0);

  // With the fault gone the retry trains the same batch.
  ASSERT_TRUE(scheduler.Flush().ok());
  EXPECT_EQ(scheduler.pending_trajectories(), 0u);
  EXPECT_EQ(scheduler.batches_trained(), 1);
  EXPECT_TRUE(system.trained());
}

TEST(DurabilityTest, CheckpointGarbageCollectsTheLog) {
  const SimScenario scenario = BuildScenario(MiniSpec(51));
  const std::string dir = FreshDir("durability_gc");
  const std::string checkpoint = dir + "/checkpoint.bin";
  WalOptions wal_options{.dir = dir + "/wal"};
  wal_options.segment_bytes = 1024;  // rotate often

  Kamel system(TinyOptions());
  MaintenanceScheduler scheduler(&system, TinyPolicy());
  auto wal = OpenDurableIngestion(&system, &scheduler, wal_options,
                                  checkpoint);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(scheduler.Submit(scenario.train.trajectories[i]).ok());
  }
  EXPECT_EQ(scheduler.batches_trained(), 2);
  EXPECT_GT((*wal)->stats().segments_deleted, 0);
  // Everything trained is checkpointed: recovery has nothing to replay.
  (*wal).reset();
  Kamel recovered(TinyOptions());
  MaintenanceScheduler fresh(&recovered, TinyPolicy());
  IngestRecoveryReport report;
  ASSERT_TRUE(OpenDurableIngestion(&recovered, &fresh, wal_options,
                                   checkpoint, &report)
                  .ok());
  EXPECT_EQ(report.submits_replayed, 0u);
  EXPECT_EQ(report.batches_retrained, 0u);
  EXPECT_EQ(recovered.store().size(), system.store().size());
}

}  // namespace
}  // namespace kamel
