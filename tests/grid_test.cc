#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "grid/hex_grid.h"
#include "grid/square_grid.h"

namespace kamel {
namespace {

TEST(CellIdTest, PackUnpackRoundTrip) {
  for (int32_t a : {0, 1, -1, 12345, -98765}) {
    for (int32_t b : {0, 7, -3, 4242, -11111}) {
      const CellId id = PackCellId(a, b);
      EXPECT_EQ(CellIdHigh(id), a);
      EXPECT_EQ(CellIdLow(id), b);
    }
  }
}

TEST(HexGridTest, OriginInCellZero) {
  const HexGrid grid(75.0);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), PackCellId(0, 0));
  const Vec2 c = grid.Centroid(PackCellId(0, 0));
  EXPECT_NEAR(c.x, 0.0, 1e-9);
  EXPECT_NEAR(c.y, 0.0, 1e-9);
}

TEST(HexGridTest, CentroidRoundTrip) {
  // Property: the centroid of any cell maps back to that cell.
  const HexGrid grid(75.0);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.NextDouble(-5000, 5000), rng.NextDouble(-5000, 5000)};
    const CellId cell = grid.CellOf(p);
    EXPECT_EQ(grid.CellOf(grid.Centroid(cell)), cell);
  }
}

TEST(HexGridTest, PointIsNearItsCellCentroid) {
  // Property: every point is within one circumradius (= edge) of its
  // cell's centroid.
  const HexGrid grid(60.0);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.NextDouble(-3000, 3000), rng.NextDouble(-3000, 3000)};
    EXPECT_LE(Distance(p, grid.Centroid(grid.CellOf(p))), 60.0 + 1e-9);
  }
}

TEST(HexGridTest, SixNeighborsAllEquidistant) {
  // The uniformity property the paper credits hexagons with
  // (Section 3.1): all six neighbors at exactly sqrt(3)*H.
  const HexGrid grid(75.0);
  const CellId center = grid.CellOf({500.0, -250.0});
  const std::vector<CellId> neighbors = grid.EdgeNeighbors(center);
  ASSERT_EQ(neighbors.size(), 6u);
  const double expected = std::sqrt(3.0) * 75.0;
  for (CellId nb : neighbors) {
    EXPECT_NEAR(Distance(grid.Centroid(center), grid.Centroid(nb)),
                expected, 1e-9);
    EXPECT_EQ(grid.GridDistance(center, nb), 1);
  }
  EXPECT_NEAR(grid.NeighborSpacingMeters(), expected, 1e-12);
}

TEST(HexGridTest, NeighborsAreDistinct) {
  const HexGrid grid(75.0);
  const CellId center = grid.CellOf({0.0, 0.0});
  const std::vector<CellId> neighbors = grid.EdgeNeighbors(center);
  std::unordered_set<CellId> unique(neighbors.begin(), neighbors.end());
  EXPECT_EQ(unique.size(), 6u);
  EXPECT_EQ(unique.count(center), 0u);
}

TEST(HexGridTest, GridDistanceMatchesBfsHops) {
  // Property: analytic axial distance equals BFS hop count via Disk.
  const HexGrid grid(75.0);
  Rng rng(8);
  const CellId center = grid.CellOf({0.0, 0.0});
  for (int k = 1; k <= 4; ++k) {
    for (CellId cell : grid.Disk(center, k)) {
      EXPECT_LE(grid.GridDistance(center, cell), k);
    }
  }
  for (int i = 0; i < 100; ++i) {
    const Vec2 p{rng.NextDouble(-1500, 1500), rng.NextDouble(-1500, 1500)};
    const CellId cell = grid.CellOf(p);
    const int d = grid.GridDistance(center, cell);
    if (d <= 6) {
      const auto disk = grid.Disk(center, d);
      EXPECT_NE(std::find(disk.begin(), disk.end(), cell), disk.end());
      if (d > 0) {
        const auto smaller = grid.Disk(center, d - 1);
        EXPECT_EQ(std::find(smaller.begin(), smaller.end(), cell),
                  smaller.end());
      }
    }
  }
}

TEST(HexGridTest, DiskSizeIsCenteredHexNumber) {
  const HexGrid grid(75.0);
  const CellId center = grid.CellOf({0.0, 0.0});
  for (int k = 0; k <= 5; ++k) {
    EXPECT_EQ(grid.Disk(center, k).size(),
              static_cast<size_t>(1 + 3 * k * (k + 1)));
  }
}

TEST(HexGridTest, AreaFormula) {
  const HexGrid grid(75.0);
  EXPECT_NEAR(grid.CellAreaM2(), 3.0 * std::sqrt(3.0) / 2.0 * 75.0 * 75.0,
              1e-9);
}

TEST(HexGridTest, BoundaryVerticesSurroundCentroid) {
  const HexGrid grid(50.0);
  const CellId cell = grid.CellOf({321.0, -123.0});
  const std::vector<Vec2> boundary = grid.CellBoundary(cell);
  ASSERT_EQ(boundary.size(), 6u);
  const Vec2 centroid = grid.Centroid(cell);
  for (const Vec2& v : boundary) {
    EXPECT_NEAR(Distance(v, centroid), 50.0, 1e-9);
  }
}

TEST(HexGridTest, TessellationPartitionsPlane) {
  // Property: points near a shared border always land in exactly one cell
  // (no point is lost or double-assigned by construction; check stability
  // under tiny perturbations producing either of two adjacent cells).
  const HexGrid grid(75.0);
  Rng rng(10);
  for (int i = 0; i < 300; ++i) {
    const Vec2 p{rng.NextDouble(-2000, 2000), rng.NextDouble(-2000, 2000)};
    const CellId cell = grid.CellOf(p);
    // Any other cell claiming p would have a closer centroid; verify the
    // assigned centroid is (weakly) nearest among the neighborhood.
    const double own = Distance(p, grid.Centroid(cell));
    for (CellId nb : grid.EdgeNeighbors(cell)) {
      EXPECT_LE(own, Distance(p, grid.Centroid(nb)) + 1e-6);
    }
  }
}

TEST(SquareGridTest, CellOfAndCentroid) {
  const SquareGrid grid(100.0);
  EXPECT_EQ(grid.CellOf({50.0, 50.0}), PackCellId(0, 0));
  EXPECT_EQ(grid.CellOf({-1.0, -1.0}), PackCellId(-1, -1));
  const Vec2 c = grid.Centroid(PackCellId(2, -3));
  EXPECT_EQ(c.x, 250.0);
  EXPECT_EQ(c.y, -250.0);
}

TEST(SquareGridTest, CentroidRoundTrip) {
  const SquareGrid grid(120.0);
  Rng rng(12);
  for (int i = 0; i < 300; ++i) {
    const Vec2 p{rng.NextDouble(-4000, 4000), rng.NextDouble(-4000, 4000)};
    const CellId cell = grid.CellOf(p);
    EXPECT_EQ(grid.CellOf(grid.Centroid(cell)), cell);
  }
}

TEST(SquareGridTest, FourEdgeNeighborsManhattanDistance) {
  const SquareGrid grid(100.0);
  const CellId center = grid.CellOf({550.0, 550.0});
  const std::vector<CellId> neighbors = grid.EdgeNeighbors(center);
  ASSERT_EQ(neighbors.size(), 4u);
  for (CellId nb : neighbors) {
    EXPECT_EQ(grid.GridDistance(center, nb), 1);
    EXPECT_NEAR(Distance(grid.Centroid(center), grid.Centroid(nb)), 100.0,
                1e-9);
  }
  EXPECT_EQ(grid.GridDistance(PackCellId(0, 0), PackCellId(3, -2)), 5);
}

TEST(SquareGridTest, EqualAreaEdgeMatchesPaper) {
  // The paper pairs 75 m hexagons with ~120 m squares (Section 8.5).
  const double edge = SquareGrid::EdgeForEqualHexArea(75.0);
  EXPECT_NEAR(edge, 120.9, 0.5);
  const SquareGrid square(edge);
  const HexGrid hex(75.0);
  EXPECT_NEAR(square.CellAreaM2(), hex.CellAreaM2(), 1e-6);
}

TEST(SquareGridTest, DiskSizeIsDiamond) {
  const SquareGrid grid(100.0);
  const CellId center = grid.CellOf({0.0, 0.0});
  // 4-connectivity disk of radius k has 2k^2+2k+1 cells.
  for (int k = 0; k <= 4; ++k) {
    EXPECT_EQ(grid.Disk(center, k).size(),
              static_cast<size_t>(2 * k * k + 2 * k + 1));
  }
}

class GridPolymorphismTest : public testing::TestWithParam<bool> {};

TEST_P(GridPolymorphismTest, InterfaceContract) {
  // Property sweep over both grid families through the base interface.
  std::unique_ptr<GridSystem> grid;
  if (GetParam()) {
    grid = std::make_unique<HexGrid>(75.0);
  } else {
    grid = std::make_unique<SquareGrid>(120.0);
  }
  Rng rng(GetParam() ? 20 : 21);
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.NextDouble(-2000, 2000), rng.NextDouble(-2000, 2000)};
    const CellId cell = grid->CellOf(p);
    EXPECT_EQ(grid->CellOf(grid->Centroid(cell)), cell);
    EXPECT_EQ(grid->GridDistance(cell, cell), 0);
    for (CellId nb : grid->EdgeNeighbors(cell)) {
      EXPECT_EQ(grid->GridDistance(cell, nb), 1);
      EXPECT_NEAR(Distance(grid->Centroid(cell), grid->Centroid(nb)),
                  grid->NeighborSpacingMeters(), 1e-9);
    }
  }
  EXPECT_GT(grid->CellAreaM2(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothGrids, GridPolymorphismTest,
                         testing::Values(true, false));

}  // namespace
}  // namespace kamel
