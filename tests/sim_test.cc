// Simulator substrate tests: network generator, Dijkstra router, GPS trip
// simulator, sparsifier and density resampler.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "geo/polyline.h"
#include "sim/datasets.h"
#include "sim/gps_simulator.h"
#include "sim/network_generator.h"
#include "sim/road_network.h"
#include "sim/route_planner.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

TEST(RoadNetworkTest, AddRoadIsBidirectional) {
  RoadNetwork net;
  const int a = net.AddNode({0, 0});
  const int b = net.AddNode({100, 0});
  net.AddRoad(a, b, 10.0);
  EXPECT_EQ(net.num_edges(), 2u);
  EXPECT_EQ(net.OutEdges(a).size(), 1u);
  EXPECT_EQ(net.OutEdges(b).size(), 1u);
  EXPECT_DOUBLE_EQ(net.Edge(net.OutEdges(a)[0]).length, 100.0);
  EXPECT_DOUBLE_EQ(net.TotalRoadLength(), 100.0);
}

TEST(RoadNetworkTest, NearestNodeAndProjection) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({100, 0});
  net.AddNode({0, 100});
  net.AddRoad(0, 1, 10.0);
  EXPECT_EQ(net.NearestNode({90, 5}), 1);
  const auto projection = net.ProjectToNetwork({50, 20});
  EXPECT_NEAR(projection.distance, 20.0, 1e-9);
  EXPECT_NEAR(projection.point.x, 50.0, 1e-9);
  EXPECT_NEAR(projection.offset, 50.0, 1e-9);
}

TEST(NetworkGeneratorTest, ProducesConnectedCity) {
  NetworkGenConfig config;
  config.width_m = 1500.0;
  config.height_m = 1500.0;
  config.block_m = 300.0;
  config.drop_fraction = 0.2;
  config.seed = 3;
  const RoadNetwork net = GenerateNetwork(config);
  ASSERT_GT(net.num_nodes(), 30);
  ASSERT_GT(net.num_edges(), 0u);

  // Every node reachable from node 0 (special roads connect via
  // junctions).
  RoutePlanner planner(&net);
  const std::vector<double> dist = planner.AllDistances(0);
  int unreachable = 0;
  for (double d : dist) unreachable += std::isinf(d);
  EXPECT_EQ(unreachable, 0);
}

TEST(NetworkGeneratorTest, DeterministicForSeed) {
  NetworkGenConfig config;
  config.seed = 9;
  const RoadNetwork a = GenerateNetwork(config);
  const RoadNetwork b = GenerateNetwork(config);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.NodePosition(5), b.NodePosition(5));
}

TEST(NetworkGeneratorTest, RingRoadAddsCurvedGeometry) {
  NetworkGenConfig with;
  with.ring_road = true;
  with.num_winding_roads = 0;
  with.num_diagonals = 0;
  NetworkGenConfig without = with;
  without.ring_road = false;
  EXPECT_GT(GenerateNetwork(with).num_nodes(),
            GenerateNetwork(without).num_nodes());
}

TEST(RoutePlannerTest, ShortestPathOnSquare) {
  // Square with a shortcut diagonal.
  RoadNetwork net;
  for (const Vec2 p :
       {Vec2{0, 0}, Vec2{100, 0}, Vec2{100, 100}, Vec2{0, 100}}) {
    net.AddNode(p);
  }
  net.AddRoad(0, 1, 10.0);
  net.AddRoad(1, 2, 10.0);
  net.AddRoad(2, 3, 10.0);
  net.AddRoad(3, 0, 10.0);
  RoutePlanner planner(&net);
  EXPECT_EQ(planner.ShortestPath(0, 2),
            (std::vector<int>{0, 1, 2}));  // either way is 200; ties stable
  EXPECT_NEAR(planner.PathDistance(0, 2), 200.0, 1e-9);
  EXPECT_EQ(planner.ShortestPath(1, 1), (std::vector<int>{1}));

  net.AddRoad(0, 2, 10.0);  // diagonal ~141.4
  RoutePlanner planner2(&net);
  EXPECT_NEAR(planner2.PathDistance(0, 2), std::sqrt(2.0) * 100.0, 1e-6);
  EXPECT_EQ(planner2.ShortestPath(0, 2).size(), 2u);
}

TEST(RoutePlannerTest, UnreachableReturnsEmpty) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({100, 0});
  net.AddNode({500, 500});
  net.AddRoad(0, 1, 10.0);
  RoutePlanner planner(&net);
  EXPECT_TRUE(planner.ShortestPath(0, 2).empty());
  EXPECT_TRUE(std::isinf(planner.PathDistance(0, 2)));
}

TEST(RoutePlannerTest, TravelTimePrefersFastRoads) {
  // Two routes 0->2: direct slow road vs detour on fast roads.
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({100, 100});
  net.AddNode({200, 0});
  net.AddRoad(0, 2, 2.0);   // 200 m at 2 m/s = 100 s
  net.AddRoad(0, 1, 20.0);  // ~141 m at 20 m/s
  net.AddRoad(1, 2, 20.0);  // total ~14 s
  RoutePlanner by_distance(&net, RoutePlanner::Cost::kDistance);
  RoutePlanner by_time(&net, RoutePlanner::Cost::kTravelTime);
  EXPECT_EQ(by_distance.ShortestPath(0, 2).size(), 2u);
  EXPECT_EQ(by_time.ShortestPath(0, 2).size(), 3u);
}

class GpsSimulatorTest : public testing::Test {
 protected:
  GpsSimulatorTest() : projection_({45.0, -93.0}) {
    config_.width_m = 1200.0;
    config_.height_m = 1200.0;
    config_.block_m = 300.0;
    config_.drop_fraction = 0.0;
    config_.num_diagonals = 0;
    config_.ring_road = false;
    config_.num_winding_roads = 0;
    network_ = GenerateNetwork(config_);
  }

  NetworkGenConfig config_;
  RoadNetwork network_;
  LocalProjection projection_;
};

TEST_F(GpsSimulatorTest, GeneratesRequestedTrips) {
  GpsSimulator simulator(&network_, &projection_);
  TripConfig trips;
  trips.num_trips = 15;
  trips.min_trip_m = 500.0;
  trips.sampling_interval_s = 5.0;
  trips.seed = 4;
  const TrajectoryDataset data = simulator.GenerateTrips(trips, 100);
  ASSERT_EQ(data.trajectories.size(), 15u);
  EXPECT_EQ(data.trajectories[0].id, 100);
  for (const Trajectory& t : data.trajectories) {
    ASSERT_GE(t.points.size(), 3u);
    EXPECT_GE(t.LengthMeters(), 400.0);  // min length minus noise slack
    // Timestamps strictly increasing with ~the sampling interval.
    for (size_t i = 1; i < t.points.size(); ++i) {
      EXPECT_GT(t.points[i].time, t.points[i - 1].time);
    }
  }
}

TEST_F(GpsSimulatorTest, NoiseMagnitudeMatchesConfig) {
  GpsSimulator simulator(&network_, &projection_);
  TripConfig trips;
  trips.num_trips = 20;
  trips.noise_stddev_m = 5.0;
  trips.sampling_interval_s = 2.0;
  trips.seed = 5;
  const TrajectoryDataset data = simulator.GenerateTrips(trips);
  // Every reading should be near the road network.
  double sum = 0.0;
  int count = 0;
  for (const Trajectory& t : data.trajectories) {
    for (const TrajPoint& p : t.points) {
      sum += network_.ProjectToNetwork(projection_.Project(p.pos)).distance;
      ++count;
    }
  }
  ASSERT_GT(count, 100);
  const double mean = sum / count;
  // Mean distance of |N(0,5)x2| from a line ~ 5*sqrt(pi/2) ~ 6.3, but the
  // nearest-edge projection clips it; just bound it loosely.
  EXPECT_LT(mean, 12.0);
  EXPECT_GT(mean, 1.0);
}

TEST_F(GpsSimulatorTest, WaypointsMakeLongerTrips) {
  GpsSimulator simulator(&network_, &projection_);
  TripConfig direct;
  direct.num_trips = 10;
  direct.min_trip_m = 300.0;
  direct.seed = 6;
  TripConfig meander = direct;
  meander.num_waypoints = 3;
  double direct_len = 0.0;
  double meander_len = 0.0;
  for (const auto& t : simulator.GenerateTrips(direct).trajectories) {
    direct_len += t.LengthMeters();
  }
  for (const auto& t : simulator.GenerateTrips(meander).trajectories) {
    meander_len += t.LengthMeters();
  }
  EXPECT_GT(meander_len, direct_len * 1.5);
}

TEST(SparsifierTest, EnforcesAlongPathSpacing) {
  Trajectory dense;
  for (int i = 0; i <= 100; ++i) {
    dense.points.push_back({{45.0, -93.0 + i * 0.0002}, i * 1.0});
  }
  const double step = HaversineMeters(dense.points[0].pos,
                                      dense.points[1].pos);
  const Trajectory sparse = Sparsify(dense, 10 * step);
  ASSERT_GE(sparse.points.size(), 3u);
  for (size_t i = 1; i + 1 < sparse.points.size(); ++i) {
    const double gap = HaversineMeters(sparse.points[i - 1].pos,
                                       sparse.points[i].pos);
    EXPECT_GE(gap, 10 * step - step - 1e-6);
  }
  EXPECT_EQ(sparse.points.front().time, dense.points.front().time);
  EXPECT_EQ(sparse.points.back().time, dense.points.back().time);
}

TEST(SparsifierTest, KeepsEndpointsEvenForHugeDistance) {
  Trajectory dense;
  for (int i = 0; i < 20; ++i) {
    dense.points.push_back({{45.0, -93.0 + i * 0.0001}, i * 1.0});
  }
  const Trajectory sparse = Sparsify(dense, 1e9);
  EXPECT_EQ(sparse.points.size(), 2u);
}

TEST(SparsifierTest, DatasetVariantAppliesToAll) {
  TrajectoryDataset data;
  for (int t = 0; t < 3; ++t) {
    Trajectory traj;
    for (int i = 0; i < 50; ++i) {
      traj.points.push_back({{45.0, -93.0 + i * 0.0002}, i * 1.0});
    }
    data.trajectories.push_back(traj);
  }
  const TrajectoryDataset sparse = SparsifyDataset(data, 500.0);
  ASSERT_EQ(sparse.trajectories.size(), 3u);
  for (const auto& t : sparse.trajectories) {
    EXPECT_LT(t.points.size(), 50u);
  }
}

TEST(ResampleTest, KeepsIntervalAndEndpoints) {
  Trajectory dense;
  for (int i = 0; i <= 120; ++i) {
    dense.points.push_back({{45.0, -93.0 + i * 0.00005}, i * 1.0});
  }
  const Trajectory coarse = ResampleByInterval(dense, 15.0);
  ASSERT_GE(coarse.points.size(), 3u);
  EXPECT_EQ(coarse.points.front().time, 0.0);
  EXPECT_EQ(coarse.points.back().time, 120.0);
  for (size_t i = 1; i + 1 < coarse.points.size(); ++i) {
    EXPECT_GE(coarse.points[i].time - coarse.points[i - 1].time,
              15.0 - 1e-9);
  }
  // 1s -> 15s keeps ~1/15th of readings.
  EXPECT_NEAR(static_cast<double>(coarse.points.size()), 121.0 / 15.0, 2.0);
}

TEST(DatasetsTest, ScenarioSplitsTrainTest) {
  ScenarioSpec spec = MiniSpec();
  spec.trips.num_trips = 40;
  const SimScenario scenario = BuildScenario(spec);
  EXPECT_EQ(scenario.train.trajectories.size(), 32u);
  EXPECT_EQ(scenario.test.trajectories.size(), 8u);
  EXPECT_GT(scenario.network->num_nodes(), 0);
}

TEST(DatasetsTest, JakartaTripsAreLongAndDense) {
  // The defining contrast of Section 8.1: Jakarta-like trips carry far
  // more readings than Porto-like ones.
  ScenarioSpec porto = PortoLikeSpec();
  porto.trips.num_trips = 12;
  ScenarioSpec jakarta = JakartaLikeSpec();
  jakarta.trips.num_trips = 6;
  const SimScenario p = BuildScenario(porto);
  const SimScenario j = BuildScenario(jakarta);
  const double p_avg =
      static_cast<double>(p.train.TotalPoints() + p.test.TotalPoints()) /
      12.0;
  const double j_avg =
      static_cast<double>(j.train.TotalPoints() + j.test.TotalPoints()) /
      6.0;
  EXPECT_GT(j_avg, 8.0 * p_avg);
}

}  // namespace
}  // namespace kamel
