// Robustness tests: snapshot framing and corruption fuzzing, fault
// injection, hardened serving boundaries, and streaming resource limits.
// This binary carries the "robustness" ctest label and is the target of
// the KAMEL_SANITIZE=address,undefined configuration — every test here
// must hold under ASan/UBSan (no read past a torn frame, no abort on
// garbage input).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "core/kamel.h"
#include "eval/scenario.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

// ---- CRC32C ----------------------------------------------------------

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC-32C check value (RFC 3720 appendix B / "123456789").
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "kamel snapshot payload";
  uint32_t rolling = Crc32cExtend(0, data.data(), 5);
  rolling = Crc32cExtend(rolling, data.data() + 5, data.size() - 5);
  EXPECT_EQ(rolling, Crc32c(data.data(), data.size()));
}

// ---- section framing -------------------------------------------------

TEST(SectionFramingTest, NestedRoundTrip) {
  BinaryWriter writer;
  writer.WriteMagicHeader();
  writer.BeginSection("outer");
  writer.WriteU32(7);
  writer.BeginSection("inner");
  writer.WriteString("payload");
  writer.EndSection();
  writer.WriteU32(9);
  writer.EndSection();

  BinaryReader reader(writer.buffer());
  auto version = reader.ReadMagicHeader();
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, kSnapshotVersion);

  auto outer = reader.EnterSection();
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->name, "outer");
  EXPECT_TRUE(outer->crc_ok);
  ASSERT_TRUE(reader.ReadU32().ok());
  ASSERT_TRUE(reader.EnterSection("inner").ok());
  auto text = reader.ReadString();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "payload");
  ASSERT_TRUE(reader.LeaveSection().ok());
  auto tail = reader.ReadU32();
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, 9u);
  ASSERT_TRUE(reader.LeaveSection().ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SectionFramingTest, LeaveSectionSkipsUnreadPayload) {
  BinaryWriter writer;
  writer.BeginSection("skipme");
  for (int i = 0; i < 100; ++i) writer.WriteF64(i);
  writer.EndSection();
  writer.WriteU32(42);

  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(reader.EnterSection("skipme").ok());
  ASSERT_TRUE(reader.LeaveSection().ok());
  auto value = reader.ReadU32();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42u);
}

TEST(SectionFramingTest, PayloadDamageFailsCrcButFrameSurvives) {
  BinaryWriter writer;
  writer.BeginSection("data");
  writer.WriteString("important bytes");
  writer.EndSection();
  writer.WriteU32(5);

  // Damage a byte squarely inside the payload (after name+len+crc).
  std::vector<uint8_t> fresh = writer.buffer();
  const size_t payload_byte = fresh.size() - 6;  // inside the string
  std::vector<uint8_t> damaged =
      FaultInjectingReader(std::move(fresh)).FlipByte(payload_byte).TakeBytes();

  BinaryReader reader(std::move(damaged));
  auto section = reader.EnterSection();
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(section->name, "data");
  EXPECT_FALSE(section->crc_ok);
  ASSERT_TRUE(reader.LeaveSection().ok());  // skip the damaged payload
  EXPECT_TRUE(reader.ReadU32().ok());       // and keep reading after it
}

TEST(SectionFramingTest, TruncatedFrameIsStatusNotCrash) {
  BinaryWriter writer;
  writer.BeginSection("data");
  writer.WriteString("important bytes");
  writer.EndSection();

  for (size_t keep = 0; keep < writer.buffer().size(); keep += 3) {
    std::vector<uint8_t> bytes = writer.buffer();
    bytes = FaultInjectingReader(std::move(bytes)).TruncateAt(keep).TakeBytes();
    BinaryReader reader(std::move(bytes));
    auto section = reader.EnterSection();
    // Every truncation is either an unreadable frame (non-OK) or a frame
    // whose shortened payload fails its CRC.
    if (section.ok()) {
      EXPECT_FALSE(section->crc_ok) << "keep=" << keep;
    }
  }
}

TEST(SectionFramingTest, InsaneLengthIsRejectedBeforeAllocation) {
  BinaryWriter writer;
  writer.BeginSection("x");
  writer.WriteU32(1);
  writer.EndSection();
  std::vector<uint8_t> bytes = writer.buffer();
  // The u64 length field sits right after the name frame (u32 len + 1).
  for (size_t i = 5; i < 5 + 8 && i < bytes.size(); ++i) bytes[i] = 0xFF;
  BinaryReader reader(std::move(bytes));
  EXPECT_FALSE(reader.EnterSection().ok());
}

TEST(SectionFramingTest, LegacyV1FileIsDetected) {
  BinaryWriter writer;
  writer.WriteString("kamel-system-v1");  // how v1 snapshots began
  BinaryReader reader(writer.buffer());
  auto version = reader.ReadMagicHeader();
  ASSERT_FALSE(version.ok());
  EXPECT_NE(version.status().message().find("legacy"), std::string::npos);
}

// ---- error message quality -------------------------------------------

TEST(BinaryIoTest, MissingFileNamesPathAndErrno) {
  auto reader = BinaryReader::FromFile("/nonexistent/kamel-nope.bin");
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("/nonexistent/kamel-nope.bin"),
            std::string::npos);
  EXPECT_NE(reader.status().message().find("No such file"),
            std::string::npos);
}

TEST(BinaryIoTest, UnwritableFlushNamesPathAndErrno) {
  BinaryWriter writer;
  writer.WriteU32(1);
  const Status status = writer.FlushToFileAtomic("/nonexistent/dir/out.bin");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("/nonexistent/dir/out.bin"),
            std::string::npos);
}

// ---- fault injector --------------------------------------------------

TEST(FaultInjectorTest, SkipCountAndReset) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Reset();
  injector.Arm("test.point", /*skip=*/2, /*count=*/2,
               StatusCode::kResourceExhausted);
  EXPECT_TRUE(injector.Hit("test.point").ok());   // skip 1
  EXPECT_TRUE(injector.Hit("test.point").ok());   // skip 2
  EXPECT_EQ(injector.Hit("test.point").code(),    // fire 1
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(injector.Hit("test.point").ok());  // fire 2
  EXPECT_TRUE(injector.Hit("test.point").ok());   // exhausted
  EXPECT_EQ(injector.HitCount("test.point"), 5);
  EXPECT_TRUE(injector.Hit("other.point").ok());  // unarmed passes
  injector.Reset();
  EXPECT_EQ(injector.HitCount("test.point"), 0);
}

TEST(FaultInjectorTest, ForeverUntilDisarmed) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Reset();
  injector.Arm("test.forever", 0, /*count=*/-1);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(injector.Hit("test.forever").ok());
  injector.Disarm("test.forever");
  EXPECT_TRUE(injector.Hit("test.forever").ok());
  injector.Reset();
}

TEST(FaultInjectingReaderTest, Mutations) {
  FaultInjectingReader reader(std::vector<uint8_t>{0x00, 0xFF, 0x0F, 0xAA});
  reader.FlipBit(0, 3).FlipByte(1).TruncateAt(3);
  const std::vector<uint8_t>& bytes = reader.bytes();
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x08);
  EXPECT_EQ(bytes[1], 0x00);
  EXPECT_EQ(bytes[2], 0x0F);
}

// ---- trained-system fixture ------------------------------------------

KamelOptions MiniKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 100;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.train.steps = 600;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

// One trained system + saved snapshot shared by every robustness test
// (training dominates the suite's runtime; the tests only read them).
class FaultEndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec()));
    system_ = new Kamel(MiniKamelOptions());
    ASSERT_TRUE(system_->Train(scenario_->train).ok());
    snapshot_path_ = new std::string(testing::TempDir() +
                                     "/kamel_fault_snapshot.bin");
    ASSERT_TRUE(system_->SaveToFile(*snapshot_path_).ok());
    snapshot_bytes_ = new std::vector<uint8_t>();
    std::FILE* f = std::fopen(snapshot_path_->c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    snapshot_bytes_->resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(snapshot_bytes_->data(), 1, snapshot_bytes_->size(),
                         f),
              snapshot_bytes_->size());
    std::fclose(f);
  }
  static void TearDownTestSuite() {
    delete system_;
    delete scenario_;
    delete snapshot_path_;
    delete snapshot_bytes_;
    system_ = nullptr;
    scenario_ = nullptr;
    snapshot_path_ = nullptr;
    snapshot_bytes_ = nullptr;
  }

  void TearDown() override { FaultInjector::Instance().Reset(); }

  static Trajectory SparseTest(int index, double distance = 400.0) {
    return Sparsify(scenario_->test.trajectories[index], distance);
  }

  /// Writes `bytes` to a scratch file and returns its path. The path is
  /// per-process: ctest -j runs tests from this binary as concurrent
  /// processes, and a shared scratch file lets one test's corruption
  /// bleed into another's load.
  static std::string WriteScratch(const std::vector<uint8_t>& bytes) {
    const std::string path = testing::TempDir() + "/kamel_fault_scratch." +
                             std::to_string(::getpid()) + ".bin";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (!bytes.empty()) {
      EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    }
    std::fclose(f);
    return path;
  }

  static SimScenario* scenario_;
  static Kamel* system_;
  static std::string* snapshot_path_;
  static std::vector<uint8_t>* snapshot_bytes_;
};

SimScenario* FaultEndToEndTest::scenario_ = nullptr;
Kamel* FaultEndToEndTest::system_ = nullptr;
std::string* FaultEndToEndTest::snapshot_path_ = nullptr;
std::vector<uint8_t>* FaultEndToEndTest::snapshot_bytes_ = nullptr;

// ---- fsck ------------------------------------------------------------

TEST_F(FaultEndToEndTest, FsckReportsCleanFreshSnapshot) {
  auto report = FsckSnapshot(*snapshot_path_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->version, kSnapshotVersion);
  EXPECT_TRUE(report->clean());
  std::vector<std::string> names;
  for (const auto& section : report->sections) names.push_back(section.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "meta"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "repo"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "repo.index"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "model"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "detok"), names.end());
}

TEST_F(FaultEndToEndTest, FsckNamesTheDamagedSection) {
  auto clean = FsckSnapshot(*snapshot_path_);
  ASSERT_TRUE(clean.ok());
  // Damage the first "model" payload byte; fsck must flag exactly it.
  for (const auto& section : clean->sections) {
    if (section.name != "model" || section.length == 0) continue;
    std::vector<uint8_t> bytes = *snapshot_bytes_;
    bytes = FaultInjectingReader(std::move(bytes))
                .FlipByte(section.payload_offset + section.length / 2)
                .TakeBytes();
    auto damaged = FsckSnapshot(WriteScratch(bytes));
    ASSERT_TRUE(damaged.ok());
    EXPECT_FALSE(damaged->clean());
    int corrupt = 0;
    for (const auto& s : damaged->sections) {
      if (!s.crc_ok) {
        ++corrupt;
        // The model frame and its enclosing "repo" frame both fail.
        EXPECT_TRUE(s.name == "model" || s.name == "repo") << s.name;
      }
    }
    EXPECT_GE(corrupt, 1);
    return;
  }
  FAIL() << "snapshot contains no model section";
}

// ---- atomic save -----------------------------------------------------

TEST_F(FaultEndToEndTest, FailedSaveLeavesPreviousSnapshotIntact) {
  const std::string path = testing::TempDir() + "/kamel_atomic_test.bin";
  ASSERT_TRUE(system_->SaveToFile(path).ok());

  {
    ScopedFault fault("snapshot.write");
    EXPECT_FALSE(system_->SaveToFile(path).ok());
  }

  // The interrupted save must not have torn the previous good snapshot.
  Kamel restored(MiniKamelOptions());
  LoadReport report;
  ASSERT_TRUE(restored.LoadFromFile(path, &report).ok());
  EXPECT_FALSE(report.partial());
  EXPECT_EQ(restored.repository().num_models(),
            system_->repository().num_models());
}

// ---- quarantine policy -----------------------------------------------

TEST_F(FaultEndToEndTest, DamagedModelIsQuarantinedAndServingDegrades) {
  auto fsck = FsckSnapshot(*snapshot_path_);
  ASSERT_TRUE(fsck.ok());
  const SnapshotFsckReport::Section* model = nullptr;
  for (const auto& section : fsck->sections) {
    if (section.name == "model" && section.length > 0) {
      model = &section;
      break;
    }
  }
  ASSERT_NE(model, nullptr);

  std::vector<uint8_t> bytes = *snapshot_bytes_;
  bytes = FaultInjectingReader(std::move(bytes))
              .FlipBit(model->payload_offset + model->length / 3, 5)
              .TakeBytes();
  Kamel restored(MiniKamelOptions());
  LoadReport report;
  ASSERT_TRUE(restored.LoadFromFile(WriteScratch(bytes), &report).ok());
  EXPECT_TRUE(report.partial());
  EXPECT_GE(report.models_quarantined, 1);
  EXPECT_LT(restored.repository().num_models(),
            system_->repository().num_models() + 1);
  EXPECT_FALSE(report.Summary().empty());

  // The survivor still serves: every gap gets points (model-backed or the
  // linear fallback), and no call aborts.
  auto result = restored.Impute(SparseTest(1));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->trajectory.points.size(), SparseTest(1).points.size());
}

TEST_F(FaultEndToEndTest, DamagedMetaFailsTheWholeLoad) {
  auto fsck = FsckSnapshot(*snapshot_path_);
  ASSERT_TRUE(fsck.ok());
  for (const auto& section : fsck->sections) {
    if (section.name != "meta") continue;
    std::vector<uint8_t> bytes = *snapshot_bytes_;
    bytes = FaultInjectingReader(std::move(bytes))
                .FlipByte(section.payload_offset + 3)
                .TakeBytes();
    Kamel restored(MiniKamelOptions());
    EXPECT_FALSE(restored.LoadFromFile(WriteScratch(bytes)).ok());
    return;
  }
  FAIL() << "snapshot contains no meta section";
}

TEST_F(FaultEndToEndTest, DamagedDetokenizerIsRebuiltFromIngestLog) {
  // Builder-saved snapshots carry an "ingest" section (the raw trained
  // trajectories, kept for WAL recovery). A corrupt detokenizer section
  // is therefore repairable: the load quarantines it, then refits the
  // clusters from the restored trajectories and records a note instead
  // of serving degraded cell-centroid output.
  auto fsck = FsckSnapshot(*snapshot_path_);
  ASSERT_TRUE(fsck.ok());
  for (const auto& section : fsck->sections) {
    if (section.name != "detok" || section.length == 0) continue;
    std::vector<uint8_t> bytes = *snapshot_bytes_;
    bytes = FaultInjectingReader(std::move(bytes))
                .FlipByte(section.payload_offset + section.length / 2)
                .TakeBytes();
    Kamel restored(MiniKamelOptions());
    LoadReport report;
    ASSERT_TRUE(restored.LoadFromFile(WriteScratch(bytes), &report).ok());
    EXPECT_FALSE(report.detokenizer_quarantined);
    ASSERT_FALSE(report.notes.empty());
    EXPECT_NE(report.notes.front().find("rebuilt from the ingest log"),
              std::string::npos);
    // The rebuilt detokenizer serves dense output as usual.
    auto result = restored.Impute(SparseTest(2));
    ASSERT_TRUE(result.ok());
    return;
  }
  FAIL() << "snapshot contains no detok section";
}

// Fuzz: flip or truncate bytes across the whole file; every mutation must
// yield a descriptive Status or a successful (possibly partial) load —
// never an abort or an out-of-bounds access (ASan enforces the latter).
TEST_F(FaultEndToEndTest, ByteLevelCorruptionNeverAborts) {
  const std::vector<uint8_t>& original = *snapshot_bytes_;
  ASSERT_GT(original.size(), 64u);

  std::vector<std::vector<uint8_t>> mutations;
  // A bit flip every `stride` bytes covers every section of the file.
  const size_t stride = std::max<size_t>(1, original.size() / 97);
  for (size_t offset = 0; offset < original.size(); offset += stride) {
    mutations.push_back(FaultInjectingReader(original)
                            .FlipBit(offset, static_cast<int>(offset % 8))
                            .TakeBytes());
  }
  // Torn writes at assorted depths, including mid-header.
  for (size_t keep :
       {size_t{0}, size_t{3}, size_t{8}, original.size() / 4,
        original.size() / 2, original.size() - 1}) {
    mutations.push_back(
        FaultInjectingReader(original).TruncateAt(keep).TakeBytes());
  }

  int quarantined_loads = 0;
  int rejected_loads = 0;
  int clean_loads = 0;
  for (const std::vector<uint8_t>& mutated : mutations) {
    Kamel restored(MiniKamelOptions());
    LoadReport report;
    const Status loaded =
        restored.LoadFromFile(WriteScratch(mutated), &report);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.message().empty());
      ++rejected_loads;
      continue;
    }
    report.partial() ? ++quarantined_loads : ++clean_loads;
    // A load that succeeded must serve without aborting; spot-check the
    // quarantined ones (imputing every mutation would dominate runtime).
    if (report.partial() && quarantined_loads <= 3) {
      auto result = restored.Impute(SparseTest(0));
      ASSERT_TRUE(result.ok());
    }
  }
  // The sweep must exercise both recovery regimes.
  EXPECT_GT(rejected_loads, 0);
  EXPECT_GT(quarantined_loads, 0);
  // A single flipped bit can land in framing slack only rarely; nearly
  // every mutation must be detected.
  EXPECT_LE(clean_loads, 2);
}

// ---- serving-path hardening ------------------------------------------

TEST_F(FaultEndToEndTest, ImputeRejectsGarbageTrajectories) {
  Trajectory nan_point = SparseTest(0);
  nan_point.points[1].pos.lat = std::nan("");
  EXPECT_EQ(system_->Impute(nan_point).status().code(),
            StatusCode::kInvalidArgument);

  Trajectory out_of_world = SparseTest(0);
  out_of_world.points[0].pos.lng = 400.0;
  EXPECT_EQ(system_->Impute(out_of_world).status().code(),
            StatusCode::kInvalidArgument);

  Trajectory time_warp = SparseTest(0);
  ASSERT_GE(time_warp.points.size(), 2u);
  std::swap(time_warp.points[0].time, time_warp.points[1].time);
  EXPECT_EQ(system_->Impute(time_warp).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FaultEndToEndTest, TrainRejectsGarbageTrajectories) {
  TrajectoryDataset bad = scenario_->train;
  bad.trajectories[0].points[0].time =
      std::numeric_limits<double>::infinity();
  Kamel fresh(MiniKamelOptions());
  EXPECT_EQ(fresh.Train(bad).code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultEndToEndTest, BertFaultDrivesLinearFallback) {
  Result<ImputedTrajectory> result = Status::Internal("not yet run");
  int64_t forward_hits = 0;
  {
    ScopedFault fault("bert.forward", 0, /*count=*/-1);
    result = system_->Impute(SparseTest(1));
    forward_hits = FaultInjector::Instance().HitCount("bert.forward");
  }
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.segments, 0);
  EXPECT_EQ(result->stats.failed_segments, result->stats.segments);
  EXPECT_GT(forward_hits, 0);
}

TEST_F(FaultEndToEndTest, StoreAppendFaultFailsTraining) {
  ScopedFault fault("store.append");
  Kamel fresh(MiniKamelOptions());
  EXPECT_FALSE(fresh.Train(scenario_->train).ok());
}

TEST_F(FaultEndToEndTest, ImputeDeadlineFallsBackToStraightLines) {
  KamelOptions options = MiniKamelOptions();
  options.impute_deadline_seconds = 1e-12;  // expires immediately
  Kamel restored(options);
  ASSERT_TRUE(restored.LoadFromFile(*snapshot_path_).ok());
  auto result = restored.Impute(SparseTest(1));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.segments, 0);
  EXPECT_EQ(result->stats.deadline_segments, result->stats.segments);
  EXPECT_EQ(result->stats.failed_segments, result->stats.segments);
  EXPECT_EQ(result->stats.bert_calls, 0);
  // Output is still dense-ish: linear fallback fills the gaps.
  EXPECT_GT(result->trajectory.points.size(), SparseTest(1).points.size());
}

// ---- streaming limits ------------------------------------------------

TEST_F(FaultEndToEndTest, StreamingRejectsGarbageReadings) {
  ServingEngine engine(*system_->Snapshot());
  StreamingSession session(&engine, nullptr);
  EXPECT_EQ(session.Push(1, {{std::nan(""), -93.0}, 1.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Push(1, {{45.0, 400.0}, 1.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      session.Push(1, {{45.0, -93.0},
                       std::numeric_limits<double>::infinity()})
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(session.open_trajectories(), 0u);
}

TEST_F(FaultEndToEndTest, StreamingPerObjectBackpressure) {
  StreamingOptions limits;
  limits.max_points_per_object = 4;
  ServingEngine engine(*system_->Snapshot());
  StreamingSession session(&engine, nullptr, limits);
  const Trajectory& dense = scenario_->test.trajectories[0];
  ASSERT_GE(dense.points.size(), 5u);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(session.Push(1, dense.points[i]).ok());
  }
  EXPECT_EQ(session.Push(1, dense.points[4]).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(session.total_buffered_points(), 4u);
  // Backpressure is recoverable: closing the object drains its buffer.
  ASSERT_TRUE(session.EndTrajectory(1).ok());
  EXPECT_EQ(session.total_buffered_points(), 0u);
  EXPECT_TRUE(session.Push(1, dense.points[4]).ok());
}

TEST_F(FaultEndToEndTest, StreamingEvictsLeastRecentlyActiveObject) {
  std::vector<int64_t> emitted;
  StreamingOptions limits;
  limits.max_open_objects = 2;
  ServingEngine engine(*system_->Snapshot());
  FunctionSink sink(
      [&](int64_t id, ImputedTrajectory) { emitted.push_back(id); });
  StreamingSession session(&engine, &sink, limits);
  const Trajectory sparse = SparseTest(0);
  ASSERT_GE(sparse.points.size(), 4u);

  ASSERT_TRUE(session.Push(1, sparse.points[0]).ok());
  ASSERT_TRUE(session.Push(2, sparse.points[1]).ok());
  // Touch object 1 so object 2 becomes the least recently active.
  ASSERT_TRUE(session.Push(1, sparse.points[2]).ok());
  // Admitting object 3 evicts object 2, not object 1.
  ASSERT_TRUE(session.Push(3, sparse.points[3]).ok());
  EXPECT_EQ(session.open_trajectories(), 2u);
  EXPECT_EQ(session.evictions(), 1);
  session.Drain();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], 2);
}

TEST_F(FaultEndToEndTest, StreamingTotalPointCapShedsOtherSessions) {
  std::vector<int64_t> emitted;
  StreamingOptions limits;
  limits.max_total_points = 6;
  ServingEngine engine(*system_->Snapshot());
  FunctionSink sink(
      [&](int64_t id, ImputedTrajectory) { emitted.push_back(id); });
  StreamingSession session(&engine, &sink, limits);
  const Trajectory& dense = scenario_->test.trajectories[0];
  ASSERT_GE(dense.points.size(), 7u);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(session.Push(1, dense.points[i]).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.Push(2, dense.points[i + 4]).ok());
  }
  // Crossing the global cap evicted object 1 (imputed, not dropped).
  session.Drain();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], 1);
  EXPECT_EQ(session.open_trajectories(), 1u);
  EXPECT_EQ(session.total_buffered_points(), 3u);
}

TEST_F(FaultEndToEndTest, StreamingTimeoutFlushWithOutOfOrderNoise) {
  int imputed = 0;
  ServingEngine engine(*system_->Snapshot());
  FunctionSink sink([&](int64_t, ImputedTrajectory) { ++imputed; });
  StreamingSession session(
      &engine, &sink, StreamingOptions{.session_timeout_seconds = 60.0});
  const Trajectory sparse = SparseTest(3);
  ASSERT_GE(sparse.points.size(), 3u);
  ASSERT_TRUE(session.Push(5, sparse.points[0]).ok());
  ASSERT_TRUE(session.Push(5, sparse.points[1]).ok());

  // An out-of-order reading is refused without disturbing the buffer.
  TrajPoint stale = sparse.points[0];
  stale.time = sparse.points[0].time - 1.0;
  EXPECT_EQ(session.Push(5, stale).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.open_trajectories(), 1u);

  // A reading past the timeout closes the trip and starts the next one.
  TrajPoint late = sparse.points[2];
  late.time = sparse.points[1].time + 10000.0;
  ASSERT_TRUE(session.Push(5, late).ok());
  session.Drain();
  EXPECT_EQ(imputed, 1);
  EXPECT_EQ(session.open_trajectories(), 1u);
  EXPECT_EQ(session.total_buffered_points(), 1u);

  ASSERT_TRUE(session.Flush().ok());
  session.Drain();
  EXPECT_EQ(imputed, 2);
  EXPECT_EQ(session.total_buffered_points(), 0u);
}

}  // namespace
}  // namespace kamel
