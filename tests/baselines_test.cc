// Baseline method tests: linear interpolation, TrImpute's crowd-guided
// walk, and HMM map matching against a known network.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/linear.h"
#include "baselines/map_matching.h"
#include "baselines/trimpute.h"
#include "eval/metrics.h"
#include "geo/polyline.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

TEST(LinearTest, FillsGapWithEvenSpacing) {
  LinearInterpolation linear(100.0, 150.0);
  ASSERT_TRUE(linear.Train({}).ok());
  Trajectory sparse;
  sparse.points = {{{45.0, -93.0}, 0.0}, {{45.009, -93.0}, 100.0}};
  // ~1 km apart.
  auto result = linear.Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.segments, 1);
  EXPECT_EQ(result->stats.failed_segments, 1);  // by definition
  const auto& points = result->trajectory.points;
  EXPECT_GT(points.size(), 8u);
  for (size_t i = 1; i < points.size(); ++i) {
    const double gap = HaversineMeters(points[i - 1].pos, points[i].pos);
    EXPECT_LE(gap, 110.0);
    EXPECT_GT(points[i].time, points[i - 1].time);
  }
}

TEST(LinearTest, LeavesDensePartsUntouched) {
  LinearInterpolation linear(100.0, 150.0);
  Trajectory dense;
  for (int i = 0; i < 5; ++i) {
    dense.points.push_back({{45.0, -93.0 + i * 0.0005}, i * 10.0});
  }
  auto result = linear.Impute(dense);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trajectory.points.size(), 5u);
  EXPECT_EQ(result->stats.segments, 0);
}

class TrImputeTest : public testing::Test {
 protected:
  // History: many trips along an L-shaped road (east 1 km, then north
  // 1 km) with slight noise — dense crowd wisdom.
  static TrajectoryDataset LHistory() {
    TrajectoryDataset data;
    const LocalProjection proj({45.0, -93.0});
    Rng rng(3);
    for (int t = 0; t < 40; ++t) {
      Trajectory trip;
      double time = 0.0;
      auto emit = [&](double x, double y) {
        const Vec2 p{x + rng.NextGaussian(0, 3), y + rng.NextGaussian(0, 3)};
        trip.points.push_back({proj.Unproject(p), time});
        time += 5.0;
      };
      for (double x = 0.0; x <= 1000.0; x += 50.0) emit(x, 0.0);
      for (double y = 50.0; y <= 1000.0; y += 50.0) emit(1000.0, y);
      data.trajectories.push_back(std::move(trip));
    }
    return data;
  }
};

TEST_F(TrImputeTest, RecoversLShapedPathFromDenseHistory) {
  TrImpute trimpute;
  ASSERT_TRUE(trimpute.Train(LHistory()).ok());
  EXPECT_GT(trimpute.num_indexed_points(), 1000u);
  EXPECT_GT(trimpute.train_seconds(), 0.0);

  const LocalProjection proj({45.0, -93.0});
  Trajectory sparse;
  sparse.points = {{proj.Unproject({0, 0}), 0.0},
                   {proj.Unproject({1000, 1000}), 200.0}};
  auto result = trimpute.Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.failed_segments, 0);
  ASSERT_GT(result->trajectory.points.size(), 10u);

  // The walk must hug the L, not the diagonal: the corner point
  // (1000, 0) must be approached.
  double best_to_corner = 1e18;
  for (const TrajPoint& p : result->trajectory.points) {
    best_to_corner =
        std::min(best_to_corner, Distance(proj.Project(p.pos), {1000, 0}));
  }
  EXPECT_LT(best_to_corner, 150.0);
}

TEST_F(TrImputeTest, FailsWithoutNearbyHistory) {
  TrImpute trimpute;
  ASSERT_TRUE(trimpute.Train(LHistory()).ok());
  const LocalProjection proj({45.0, -93.0});
  // A segment 5 km away from any history.
  Trajectory sparse;
  sparse.points = {{proj.Unproject({5000, 5000}), 0.0},
                   {proj.Unproject({6000, 5000}), 100.0}};
  auto result = trimpute.Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.segments, 1);
  EXPECT_EQ(result->stats.failed_segments, 1);
}

TEST_F(TrImputeTest, ImputeBeforeTrainFails) {
  TrImpute trimpute;
  Trajectory sparse;
  sparse.points = {{{45.0, -93.0}, 0.0}};
  EXPECT_EQ(trimpute.Impute(sparse).status().code(),
            StatusCode::kFailedPrecondition);
}

class MapMatchingTest : public testing::Test {
 protected:
  MapMatchingTest() {
    spec_ = MiniSpec(31);
    spec_.trips.num_trips = 12;
    spec_.trips.noise_stddev_m = 5.0;
    scenario_ = BuildScenario(spec_);
    matcher_ = std::make_unique<MapMatching>(scenario_.network.get(),
                                             scenario_.projection.get());
  }

  ScenarioSpec spec_;
  SimScenario scenario_;
  std::unique_ptr<MapMatching> matcher_;
};

TEST_F(MapMatchingTest, RecoversRouteThroughSparseGaps) {
  // With the true network in hand, map matching should reconstruct the
  // path with high recall — the paper's reference line.
  ASSERT_TRUE(matcher_->Train(scenario_.train).ok());
  RatioCount recall;
  for (const Trajectory& dense : scenario_.test.trajectories) {
    const Trajectory sparse = Sparsify(dense, 400.0);
    auto result = matcher_->Impute(sparse);
    ASSERT_TRUE(result.ok());
    std::vector<Vec2> gt;
    for (const auto& p : dense.points) {
      gt.push_back(scenario_.projection->Project(p.pos));
    }
    std::vector<Vec2> imputed;
    for (const auto& p : result->trajectory.points) {
      imputed.push_back(scenario_.projection->Project(p.pos));
    }
    recall.Accumulate(RecallCount(gt, imputed, 100.0, 50.0));
  }
  EXPECT_GT(recall.Ratio(), 0.85);
}

TEST_F(MapMatchingTest, OutputsDensePointsInGaps) {
  const Trajectory sparse =
      Sparsify(scenario_.test.trajectories[0], 500.0);
  auto result = matcher_->Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->trajectory.points.size(), sparse.points.size());
  EXPECT_GT(result->stats.segments, 0);
}

TEST_F(MapMatchingTest, EmptyTrajectoryIsNoop) {
  auto result = matcher_->Impute(Trajectory{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->trajectory.points.empty());
}

}  // namespace
}  // namespace kamel
