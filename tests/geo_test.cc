#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/bbox.h"
#include "geo/latlng.h"
#include "geo/polyline.h"
#include "geo/projection.h"
#include "geo/trajectory.h"

namespace kamel {
namespace {

TEST(HaversineTest, ZeroForSamePoint) {
  const LatLng p{45.0, -93.0};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  const double d = HaversineMeters({45.0, -93.0}, {46.0, -93.0});
  EXPECT_NEAR(d, 111195.0, 200.0);
}

TEST(HaversineTest, LongitudeShrinksWithLatitude) {
  const double at_equator = HaversineMeters({0.0, 0.0}, {0.0, 1.0});
  const double at_60 = HaversineMeters({60.0, 0.0}, {60.0, 1.0});
  EXPECT_NEAR(at_60 / at_equator, 0.5, 0.01);
}

TEST(HaversineTest, Symmetric) {
  const LatLng a{41.15, -8.61};
  const LatLng b{41.18, -8.65};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(ProjectionTest, OriginMapsToZero) {
  const LocalProjection proj({41.15, -8.61});
  const Vec2 v = proj.Project({41.15, -8.61});
  EXPECT_NEAR(v.x, 0.0, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
}

TEST(ProjectionTest, RoundTripsExactly) {
  const LocalProjection proj({45.0, -93.25});
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const LatLng p{45.0 + rng.NextDouble(-0.05, 0.05),
                   -93.25 + rng.NextDouble(-0.05, 0.05)};
    const LatLng back = proj.Unproject(proj.Project(p));
    EXPECT_NEAR(back.lat, p.lat, 1e-12);
    EXPECT_NEAR(back.lng, p.lng, 1e-12);
  }
}

TEST(ProjectionTest, DistancesMatchHaversineAtCityScale) {
  const LocalProjection proj({45.0, -93.25});
  const LatLng a{45.01, -93.26};
  const LatLng b{44.99, -93.22};
  const double planar = Distance(proj.Project(a), proj.Project(b));
  const double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 1e-3);
}

TEST(AngleTest, HeadingCardinalDirections) {
  EXPECT_NEAR(HeadingRadians({0, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(HeadingRadians({0, 0}, {0, 1}), M_PI / 2, 1e-12);
  EXPECT_NEAR(HeadingRadians({0, 0}, {-1, 0}), M_PI, 1e-12);
  EXPECT_NEAR(HeadingRadians({0, 0}, {0, -1}), -M_PI / 2, 1e-12);
  EXPECT_EQ(HeadingRadians({1, 1}, {1, 1}), 0.0);
}

TEST(AngleTest, DifferenceWrapsAround) {
  EXPECT_NEAR(AngleDifference(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(AngleDifference(M_PI - 0.05, -M_PI + 0.05), 0.1, 1e-12);
  EXPECT_NEAR(AngleDifference(0.0, M_PI), M_PI, 1e-12);
}

TEST(AngleTest, NormalizeIntoHalfOpenRange) {
  EXPECT_NEAR(NormalizeAngle(3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-3 * M_PI + 0.2), -M_PI + 0.2, 1e-12);
  EXPECT_NEAR(NormalizeAngle(0.5), 0.5, 1e-12);
}

TEST(BBoxTest, EmptyAndExtend) {
  BBox box;
  EXPECT_TRUE(box.Empty());
  box.Extend(Vec2{1.0, 2.0});
  EXPECT_FALSE(box.Empty());
  EXPECT_EQ(box.Width(), 0.0);
  box.Extend(Vec2{-1.0, 5.0});
  EXPECT_EQ(box.Width(), 2.0);
  EXPECT_EQ(box.Height(), 3.0);
  EXPECT_TRUE(box.Contains(Vec2{0.0, 3.0}));
  EXPECT_FALSE(box.Contains(Vec2{0.0, 6.0}));
}

TEST(BBoxTest, ContainsAndIntersects) {
  const BBox outer = BBox::FromCorners({0, 0}, {10, 10});
  const BBox inner = BBox::FromCorners({2, 2}, {4, 4});
  const BBox overlapping = BBox::FromCorners({8, 8}, {12, 12});
  const BBox disjoint = BBox::FromCorners({20, 20}, {30, 30});
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Intersects(overlapping));
  EXPECT_FALSE(outer.Contains(overlapping));
  EXPECT_FALSE(outer.Intersects(disjoint));
}

TEST(BBoxTest, ExpandedAndCenter) {
  const BBox box = BBox::FromCorners({0, 0}, {4, 2});
  const BBox grown = box.Expanded(1.0);
  EXPECT_EQ(grown.Width(), 6.0);
  EXPECT_EQ(grown.Height(), 4.0);
  EXPECT_EQ(box.Center().x, 2.0);
  EXPECT_EQ(box.Center().y, 1.0);
}

TEST(PolylineTest, Length) {
  EXPECT_EQ(polyline::Length({}), 0.0);
  EXPECT_EQ(polyline::Length({{0, 0}}), 0.0);
  EXPECT_NEAR(polyline::Length({{0, 0}, {3, 4}, {3, 14}}), 15.0, 1e-12);
}

TEST(PolylineTest, PointToSegmentDistance) {
  EXPECT_NEAR(polyline::PointToSegmentDistance({0, 1}, {-1, 0}, {1, 0}),
              1.0, 1e-12);
  // Beyond the end: distance to the endpoint.
  EXPECT_NEAR(polyline::PointToSegmentDistance({3, 4}, {-1, 0}, {0, 0}),
              5.0, 1e-12);
  // Degenerate segment.
  EXPECT_NEAR(polyline::PointToSegmentDistance({3, 4}, {0, 0}, {0, 0}),
              5.0, 1e-12);
}

TEST(PolylineTest, PointToPolylineDistance) {
  const std::vector<Vec2> line = {{0, 0}, {10, 0}, {10, 10}};
  EXPECT_NEAR(polyline::PointToPolylineDistance({5, 2}, line), 2.0, 1e-12);
  EXPECT_NEAR(polyline::PointToPolylineDistance({12, 5}, line), 2.0, 1e-12);
  EXPECT_TRUE(std::isinf(polyline::PointToPolylineDistance({0, 0}, {})));
}

TEST(PolylineTest, ResampleKeepsEndpointsAndSpacing) {
  const std::vector<Vec2> line = {{0, 0}, {100, 0}};
  const std::vector<Vec2> samples = polyline::ResampleEvery(line, 30.0);
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples.front(), (Vec2{0, 0}));
  EXPECT_EQ(samples.back(), (Vec2{100, 0}));
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(Distance(samples[i - 1], samples[i]), 30.0 + 1e-9);
  }
}

class ResampleSpacingTest : public testing::TestWithParam<double> {};

TEST_P(ResampleSpacingTest, PropertySpacingNeverExceeded) {
  // Property: on a randomized polyline, consecutive resampled points are
  // never farther apart than the requested spacing.
  const double spacing = GetParam();
  Rng rng(static_cast<uint64_t>(spacing * 1000));
  std::vector<Vec2> line = {{0, 0}};
  for (int i = 0; i < 30; ++i) {
    line.push_back({line.back().x + rng.NextDouble(-50, 80),
                    line.back().y + rng.NextDouble(-50, 80)});
  }
  const std::vector<Vec2> samples = polyline::ResampleEvery(line, spacing);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(Distance(samples[i - 1], samples[i]), spacing + 1e-6);
  }
  EXPECT_EQ(samples.front(), line.front());
  EXPECT_EQ(samples.back(), line.back());
  // All samples lie on the original line.
  for (const Vec2& s : samples) {
    EXPECT_LE(polyline::PointToPolylineDistance(s, line), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Spacings, ResampleSpacingTest,
                         testing::Values(5.0, 17.0, 50.0, 120.0));

TEST(PolylineTest, Interpolate) {
  const std::vector<Vec2> line = {{0, 0}, {10, 0}, {10, 10}};
  EXPECT_EQ(polyline::Interpolate(line, -1.0), (Vec2{0, 0}));
  EXPECT_EQ(polyline::Interpolate(line, 5.0), (Vec2{5, 0}));
  EXPECT_EQ(polyline::Interpolate(line, 15.0), (Vec2{10, 5}));
  EXPECT_EQ(polyline::Interpolate(line, 99.0), (Vec2{10, 10}));
}

TEST(PolylineTest, DropConsecutiveDuplicates) {
  const std::vector<Vec2> line = {{0, 0}, {0, 0}, {1, 1}, {1, 1}, {0, 0}};
  const std::vector<Vec2> out = polyline::DropConsecutiveDuplicates(line);
  EXPECT_EQ(out.size(), 3u);
}

TEST(TrajectoryTest, LengthAndDuration) {
  Trajectory t;
  t.points = {{{45.0, -93.0}, 0.0}, {{45.001, -93.0}, 10.0},
              {{45.002, -93.0}, 25.0}};
  EXPECT_NEAR(t.LengthMeters(), 2 * 111.195, 1.0);
  EXPECT_DOUBLE_EQ(t.DurationSeconds(), 25.0);
  Trajectory empty;
  EXPECT_EQ(empty.DurationSeconds(), 0.0);
}

TEST(TrajectoryTest, MbrAndProjection) {
  const LocalProjection proj({45.0, -93.0});
  Trajectory t;
  t.points = {{{45.0, -93.0}, 0.0}, {{45.001, -93.001}, 1.0}};
  const BBox mbr = t.Mbr(proj);
  EXPECT_FALSE(mbr.Empty());
  EXPECT_GT(mbr.Width(), 0.0);
  EXPECT_EQ(t.ProjectedPoints(proj).size(), 2u);
}

TEST(TrajectoryDatasetTest, TotalsAndMbr) {
  const LocalProjection proj({45.0, -93.0});
  TrajectoryDataset data;
  Trajectory a;
  a.points = {{{45.0, -93.0}, 0.0}};
  Trajectory b;
  b.points = {{{45.01, -93.01}, 0.0}, {{45.02, -93.02}, 5.0}};
  data.trajectories = {a, b};
  EXPECT_EQ(data.TotalPoints(), 3u);
  EXPECT_TRUE(data.Mbr(proj).Contains(proj.Project({45.015, -93.015})));
}

}  // namespace
}  // namespace kamel
