// End-to-end tests of the Kamel facade and the streaming front-end on the
// mini scenario: train -> impute -> verify density, timestamps, accuracy,
// persistence, and the ablation toggles.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/kamel.h"
#include "eval/evaluator.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel {
namespace {

KamelOptions MiniKamelOptions() {
  KamelOptions options;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 100;
  options.bert.encoder.d_model = 32;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 128;
  options.bert.encoder.max_seq_len = 32;
  options.bert.encoder.dropout = 0.1;
  options.bert.train.steps = 1200;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 50;
  options.beam_size = 4;
  options.top_k = 6;
  options.max_bert_calls_per_segment = 200;
  options.seed = 42;
  return options;
}

// One trained system shared by every test in this file (training takes a
// few seconds; the tests only read it).
class KamelEndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new SimScenario(BuildScenario(MiniSpec()));
    system_ = new Kamel(MiniKamelOptions());
    ASSERT_TRUE(system_->Train(scenario_->train).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    delete scenario_;
    system_ = nullptr;
    scenario_ = nullptr;
  }

  static SimScenario* scenario_;
  static Kamel* system_;
};

SimScenario* KamelEndToEndTest::scenario_ = nullptr;
Kamel* KamelEndToEndTest::system_ = nullptr;

TEST_F(KamelEndToEndTest, TrainingBuildsTheStack) {
  EXPECT_TRUE(system_->trained());
  EXPECT_GE(system_->repository().num_models(), 1);
  EXPECT_GT(system_->max_speed_mps(), 5.0);
  EXPECT_GT(system_->detokenizer().num_tokens_with_clusters(), 10u);
  EXPECT_GT(system_->total_train_seconds(), 0.0);
  EXPECT_GT(system_->store().size(), 0u);
}

TEST_F(KamelEndToEndTest, ImputeBeforeTrainFails) {
  Kamel untrained(MiniKamelOptions());
  EXPECT_EQ(untrained.Impute(scenario_->test.trajectories[0])
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(KamelEndToEndTest, ImputeDensifiesSparseInput) {
  const Trajectory& dense = scenario_->test.trajectories[0];
  const Trajectory sparse = Sparsify(dense, 400.0);
  ASSERT_LT(sparse.points.size(), dense.points.size());
  auto result = system_->Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->trajectory.points.size(), sparse.points.size());
  EXPECT_GT(result->stats.segments, 0);
  EXPECT_EQ(result->stats.outcomes.size(),
            static_cast<size_t>(result->stats.segments));
  // Output timestamps non-decreasing and bounded by the input's range.
  const auto& points = result->trajectory.points;
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].time, points[i - 1].time - 1e-9);
  }
  EXPECT_EQ(points.front().time, sparse.points.front().time);
  EXPECT_EQ(points.back().time, sparse.points.back().time);
}

TEST_F(KamelEndToEndTest, OutputHasNoLargeGaps) {
  const Trajectory sparse =
      Sparsify(scenario_->test.trajectories[1], 400.0);
  auto result = system_->Impute(sparse);
  ASSERT_TRUE(result.ok());
  if (result->stats.failed_segments > 0) {
    GTEST_SKIP() << "fallback segments allowed to be sparse";
  }
  const auto pts = result->trajectory.ProjectedPoints(system_->projection());
  for (size_t i = 1; i < pts.size(); ++i) {
    // Within ~2 hexagon spacings (tokens adjacent + detokenizer offsets).
    EXPECT_LE(Distance(pts[i - 1], pts[i]), 2.2 * 130.0) << "gap at " << i;
  }
}

TEST_F(KamelEndToEndTest, BeatsLinearInterpolationOnRecall) {
  // The headline claim at mini scale: KAMEL recovers off-the-straight-
  // line detail that linear interpolation cannot.
  Evaluator evaluator(scenario_->projection.get());
  KamelMethod kamel_method(system_);
  LinearInterpolation linear(100.0);
  TrajectoryDataset test;
  for (size_t i = 0; i < 8 && i < scenario_->test.trajectories.size(); ++i) {
    test.trajectories.push_back(scenario_->test.trajectories[i]);
  }
  auto kamel_run = evaluator.RunMethod(&kamel_method, test, 500.0);
  auto linear_run = evaluator.RunMethod(&linear, test, 500.0);
  ASSERT_TRUE(kamel_run.ok());
  ASSERT_TRUE(linear_run.ok());
  ScoreConfig score;
  score.delta_m = 50.0;
  const EvalResult kamel_result = evaluator.Score(*kamel_run, score);
  const EvalResult linear_result = evaluator.Score(*linear_run, score);
  EXPECT_GT(kamel_result.recall, 0.55);
  EXPECT_GE(kamel_result.recall, linear_result.recall);
  EXPECT_EQ(linear_result.failure_rate, 1.0);
  EXPECT_LT(kamel_result.failure_rate, 0.6);
}

TEST_F(KamelEndToEndTest, SaveLoadServesIdenticalImputations) {
  const std::string path = testing::TempDir() + "/kamel_system_test.bin";
  ASSERT_TRUE(system_->SaveToFile(path).ok());

  Kamel restored(MiniKamelOptions());
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_TRUE(restored.trained());
  EXPECT_EQ(restored.repository().num_models(),
            system_->repository().num_models());

  const Trajectory sparse =
      Sparsify(scenario_->test.trajectories[2], 400.0);
  auto original = system_->Impute(sparse);
  auto reloaded = restored.Impute(sparse);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(original->trajectory.points.size(),
            reloaded->trajectory.points.size());
  for (size_t i = 0; i < original->trajectory.points.size(); ++i) {
    EXPECT_NEAR(original->trajectory.points[i].pos.lat,
                reloaded->trajectory.points[i].pos.lat, 1e-12);
    EXPECT_NEAR(original->trajectory.points[i].pos.lng,
                reloaded->trajectory.points[i].pos.lng, 1e-12);
  }
}

TEST_F(KamelEndToEndTest, SaveRequiresTraining) {
  Kamel untrained(MiniKamelOptions());
  EXPECT_EQ(untrained.SaveToFile("/tmp/never.bin").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(KamelEndToEndTest, StreamingSessionImputesOnTimeoutAndFlush) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot, {.num_threads = 2});
  int imputed_count = 0;
  size_t last_points = 0;
  FunctionSink sink([&](int64_t, ImputedTrajectory imputed) {
    ++imputed_count;
    last_points = imputed.trajectory.points.size();
  });
  StreamingSession session(
      &engine, &sink,
      StreamingOptions{.session_timeout_seconds = 60.0});

  const Trajectory sparse =
      Sparsify(scenario_->test.trajectories[3], 400.0);
  for (const TrajPoint& point : sparse.points) {
    ASSERT_TRUE(session.Push(7, point).ok());
  }
  EXPECT_EQ(session.open_trajectories(), 1u);

  // A reading far in the future closes the previous trip; the imputation
  // runs on the engine's pool, so Drain() before asserting delivery.
  TrajPoint late = sparse.points.back();
  late.time += 10000.0;
  ASSERT_TRUE(session.Push(7, late).ok());
  session.Drain();
  EXPECT_EQ(imputed_count, 1);
  EXPECT_GE(last_points, sparse.points.size());

  ASSERT_TRUE(session.Flush().ok());
  session.Drain();
  EXPECT_EQ(imputed_count, 2);
  EXPECT_EQ(session.open_trajectories(), 0u);
}

TEST_F(KamelEndToEndTest, StreamingRejectsTimeTravel) {
  auto snapshot = system_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ServingEngine engine(*snapshot);
  StreamingSession session(&engine, nullptr);
  ASSERT_TRUE(session.Push(1, {{45.0, -93.0}, 100.0}).ok());
  EXPECT_EQ(session.Push(1, {{45.0, -93.0}, 50.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.EndTrajectory(99).code(), StatusCode::kNotFound);
}

TEST(KamelAblationTest, TogglesProduceWorkingSystems) {
  // Each ablation of Section 8.7 must still train and impute.
  const SimScenario scenario = BuildScenario(MiniSpec(19));
  const Trajectory sparse = Sparsify(scenario.test.trajectories[0], 500.0);
  for (int variant = 0; variant < 3; ++variant) {
    KamelOptions options = MiniKamelOptions();
    options.bert.train.steps = 250;  // quality not under test here
    if (variant == 0) options.enable_partitioning = false;
    if (variant == 1) options.enable_constraints = false;
    if (variant == 2) options.enable_multipoint = false;
    Kamel system(options);
    ASSERT_TRUE(system.Train(scenario.train).ok()) << variant;
    auto result = system.Impute(sparse);
    ASSERT_TRUE(result.ok()) << variant;
    EXPECT_GE(result->trajectory.points.size(), sparse.points.size());
  }
}

TEST(KamelTrainTest, SecondBatchEnrichesTheSystem) {
  // Section 4.2: a later training batch is merged with the stored data
  // and refreshes the models rather than replacing the system.
  KamelOptions options = MiniKamelOptions();
  options.bert.train.steps = 200;
  const SimScenario scenario = BuildScenario(MiniSpec(29));

  TrajectoryDataset first_half;
  TrajectoryDataset second_half;
  for (size_t i = 0; i < scenario.train.trajectories.size(); ++i) {
    (i % 2 == 0 ? first_half : second_half)
        .trajectories.push_back(scenario.train.trajectories[i]);
  }
  Kamel system(options);
  ASSERT_TRUE(system.Train(first_half).ok());
  const size_t stored_after_first = system.store().size();
  const size_t clusters_after_first =
      system.detokenizer().num_observations();
  ASSERT_TRUE(system.Train(second_half).ok());
  EXPECT_GT(system.store().size(), stored_after_first);
  EXPECT_GT(system.detokenizer().num_observations(), clusters_after_first);

  // The enriched model is rebuilt from the union: its info reflects both
  // batches.
  int64_t max_statements = 0;
  for (const ModelInfo& info : system.repository().ModelInfos()) {
    max_statements = std::max(max_statements, info.statements_at_build);
  }
  EXPECT_GT(max_statements,
            static_cast<int64_t>(first_half.trajectories.size()));
  // And imputation still works.
  auto result =
      system.Impute(Sparsify(scenario.test.trajectories[0], 400.0));
  EXPECT_TRUE(result.ok());
}

TEST(KamelTrainTest, RejectsEmptyDataset) {
  Kamel system(MiniKamelOptions());
  EXPECT_FALSE(system.Train(TrajectoryDataset{}).ok());
}

TEST(KamelTrainTest, IterativeMethodAlsoWorks) {
  KamelOptions options = MiniKamelOptions();
  options.method = ImputeMethod::kIterativeBert;
  options.bert.train.steps = 400;
  const SimScenario scenario = BuildScenario(MiniSpec(23));
  Kamel system(options);
  ASSERT_TRUE(system.Train(scenario.train).ok());
  const Trajectory sparse = Sparsify(scenario.test.trajectories[0], 400.0);
  auto result = system.Impute(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->trajectory.points.size(), sparse.points.size());
}

}  // namespace
}  // namespace kamel
