// Unit tests for the segmented write-ahead log: framing round-trips,
// fsync policies, rotation, torn-tail truncation vs mid-log corruption,
// checkpoint garbage collection, fsck classification, and the
// TrajectoryStore write-through/replay path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/trajectory_store.h"
#include "io/wal.h"

namespace kamel {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<uint8_t> Bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

/// The single segment file of a fresh log (asserts there is exactly one).
std::string OnlySegment(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "more than one segment in " << dir;
    found = entry.path().string();
  }
  EXPECT_FALSE(found.empty()) << "no segment in " << dir;
  return found;
}

TEST(WalTest, AppendsRoundTripThroughReopen) {
  const std::string dir = FreshDir("wal_roundtrip");
  {
    auto log = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(log.ok()) << log.status().message();
    auto lsn1 = (*log)->Append(WalRecordType::kSubmit, Bytes("alpha"));
    auto lsn2 = (*log)->Append(WalRecordType::kStoreAppend, Bytes("beta"));
    ASSERT_TRUE(lsn1.ok() && lsn2.ok());
    EXPECT_EQ(*lsn1, 1u);
    EXPECT_EQ(*lsn2, 2u);
  }
  WalRecoveryReport report;
  auto log = WriteAheadLog::Open({.dir = dir}, &report);
  ASSERT_TRUE(log.ok()) << log.status().message();
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[0].lsn, 1u);
  EXPECT_EQ(report.records[0].type, WalRecordType::kSubmit);
  EXPECT_EQ(report.records[0].payload, Bytes("alpha"));
  EXPECT_EQ(report.records[1].lsn, 2u);
  EXPECT_EQ(report.records[1].payload, Bytes("beta"));
  EXPECT_EQ(report.torn_tail_bytes, 0u);
  EXPECT_EQ((*log)->next_lsn(), 3u);
  // The reopened log keeps appending where the last run stopped.
  auto lsn3 = (*log)->Append(WalRecordType::kSubmit, Bytes("gamma"));
  ASSERT_TRUE(lsn3.ok());
  EXPECT_EQ(*lsn3, 3u);
}

TEST(WalTest, FsyncPoliciesControlSyncFrequency) {
  {
    const std::string dir = FreshDir("wal_fsync_every");
    auto log = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(log.ok());
    const int64_t baseline = (*log)->stats().fsyncs;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("x")).ok());
    }
    EXPECT_EQ((*log)->stats().fsyncs - baseline, 5);
  }
  {
    const std::string dir = FreshDir("wal_fsync_n");
    WalOptions options{.dir = dir};
    options.fsync_policy = FsyncPolicy::kEveryN;
    options.fsync_every_n = 3;
    auto log = WriteAheadLog::Open(options);
    ASSERT_TRUE(log.ok());
    const int64_t baseline = (*log)->stats().fsyncs;
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("x")).ok());
    }
    EXPECT_EQ((*log)->stats().fsyncs - baseline, 2);  // after 3 and 6
  }
  {
    const std::string dir = FreshDir("wal_fsync_rotate");
    WalOptions options{.dir = dir};
    options.fsync_policy = FsyncPolicy::kOnRotate;
    auto log = WriteAheadLog::Open(options);
    ASSERT_TRUE(log.ok());
    const int64_t baseline = (*log)->stats().fsyncs;
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("x")).ok());
    }
    EXPECT_EQ((*log)->stats().fsyncs - baseline, 0);
    ASSERT_TRUE((*log)->Sync().ok());
    EXPECT_EQ((*log)->stats().fsyncs - baseline, 1);
  }
}

TEST(WalTest, RotatesAtSegmentThresholdAndRecoversAcrossSegments) {
  const std::string dir = FreshDir("wal_rotate");
  WalOptions options{.dir = dir};
  options.segment_bytes = 128;  // a few records per segment
  {
    auto log = WriteAheadLog::Open(options);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          (*log)->Append(WalRecordType::kSubmit, Bytes("payload")).ok());
    }
    EXPECT_GT((*log)->stats().rotations, 0);
    EXPECT_GT((*log)->segment_count(), 1u);
  }
  WalRecoveryReport report;
  auto log = WriteAheadLog::Open(options, &report);
  ASSERT_TRUE(log.ok()) << log.status().message();
  ASSERT_EQ(report.records.size(), 20u);
  EXPECT_GT(report.segments_scanned, 1u);
  for (size_t i = 0; i < report.records.size(); ++i) {
    EXPECT_EQ(report.records[i].lsn, i + 1);
  }
}

TEST(WalTest, TornTailIsTruncatedAndLogStaysUsable) {
  const std::string dir = FreshDir("wal_torn");
  {
    auto log = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("keep1")).ok());
    ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("keep2")).ok());
    ASSERT_TRUE(
        (*log)->Append(WalRecordType::kSubmit, Bytes("torn-away")).ok());
  }
  // Simulate a crash mid-write: cut into the last frame.
  const std::string segment = OnlySegment(dir);
  const uintmax_t size = fs::file_size(segment);
  fs::resize_file(segment, size - 4);

  WalRecoveryReport report;
  auto log = WriteAheadLog::Open({.dir = dir}, &report);
  ASSERT_TRUE(log.ok()) << log.status().message();
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[1].payload, Bytes("keep2"));
  EXPECT_GT(report.torn_tail_bytes, 0u);
  EXPECT_EQ(report.torn_tail_segment, segment);
  // The tear was truncated away: the next append lands cleanly and a
  // further reopen sees all three records.
  auto lsn = (*log)->Append(WalRecordType::kSubmit, Bytes("after"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  log->reset();
  WalRecoveryReport second;
  auto reopened = WriteAheadLog::Open({.dir = dir}, &second);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(second.records.size(), 3u);
  EXPECT_EQ(second.records[2].payload, Bytes("after"));
  EXPECT_EQ(second.torn_tail_bytes, 0u);
}

TEST(WalTest, MidLogCorruptionRefusesToOpen) {
  const std::string dir = FreshDir("wal_corrupt");
  {
    auto log = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(
        (*log)->Append(WalRecordType::kSubmit, Bytes("record-one")).ok());
    ASSERT_TRUE(
        (*log)->Append(WalRecordType::kSubmit, Bytes("record-two")).ok());
  }
  // Flip a payload byte of the FIRST record: a complete frame whose CRC
  // fails is bit rot, not a torn write — recovery must refuse.
  const std::string segment = OnlySegment(dir);
  {
    std::fstream file(segment,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(16 + 17 + 2);  // segment header + frame header + 2
    file.put('X');
  }
  auto log = WriteAheadLog::Open({.dir = dir});
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kIOError);
}

TEST(WalTest, CheckpointDeletesCoveredSegmentsAndSkipsOnReplay) {
  const std::string dir = FreshDir("wal_checkpoint");
  WalOptions options{.dir = dir};
  options.segment_bytes = 128;
  auto log = WriteAheadLog::Open(options);
  ASSERT_TRUE(log.ok());
  uint64_t last_lsn = 0;
  for (int i = 0; i < 20; ++i) {
    auto lsn = (*log)->Append(WalRecordType::kSubmit, Bytes("payload"));
    ASSERT_TRUE(lsn.ok());
    last_lsn = *lsn;
  }
  const size_t before = (*log)->segment_count();
  ASSERT_GT(before, 2u);
  ASSERT_TRUE((*log)->Checkpoint(12).ok());
  EXPECT_LT((*log)->segment_count(), before);
  EXPECT_GT((*log)->stats().segments_deleted, 0);

  // Records at or below the watermark are not replayed on reopen.
  log->reset();
  WalRecoveryReport report;
  auto reopened = WriteAheadLog::Open(options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(report.checkpoint_lsn, 12u);
  ASSERT_FALSE(report.records.empty());
  for (const WalRecord& record : report.records) {
    EXPECT_GT(record.lsn, 12u);
    EXPECT_LE(record.lsn, last_lsn);
  }
  EXPECT_EQ(report.records.back().lsn, last_lsn);
}

TEST(WalTest, FsckClassifiesTornTailVsCorruption) {
  // Clean log.
  const std::string clean_dir = FreshDir("wal_fsck_clean");
  {
    auto log = WriteAheadLog::Open({.dir = clean_dir});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("one")).ok());
    ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("two")).ok());
  }
  auto clean = FsckWal(clean_dir);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->clean());
  EXPECT_FALSE(clean->data_loss());
  EXPECT_EQ(clean->records, 2u);
  EXPECT_EQ(clean->first_lsn, 1u);
  EXPECT_EQ(clean->last_lsn, 2u);

  // Torn tail: recoverable, not data loss.
  const std::string segment = OnlySegment(clean_dir);
  fs::resize_file(segment, fs::file_size(segment) - 3);
  auto torn = FsckWal(clean_dir);
  ASSERT_TRUE(torn.ok());
  EXPECT_FALSE(torn->clean());
  EXPECT_FALSE(torn->data_loss());
  ASSERT_EQ(torn->damaged.size(), 1u);
  EXPECT_TRUE(torn->damaged[0].torn_tail);
  EXPECT_EQ(torn->damaged[0].segment, segment);

  // Mid-log corruption: data loss, named with its record index.
  const std::string rot_dir = FreshDir("wal_fsck_rot");
  {
    auto log = WriteAheadLog::Open({.dir = rot_dir});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("aaaa")).ok());
    ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("bbbb")).ok());
  }
  const std::string rot_segment = OnlySegment(rot_dir);
  {
    std::fstream file(rot_segment,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(16 + 17 + 1);
    file.put('!');
  }
  auto rotted = FsckWal(rot_dir);
  ASSERT_TRUE(rotted.ok());
  EXPECT_TRUE(rotted->data_loss());
  ASSERT_FALSE(rotted->damaged.empty());
  EXPECT_FALSE(rotted->damaged[0].torn_tail);
  EXPECT_EQ(rotted->damaged[0].record_index, 0u);
}

TEST(WalTest, OversizedLengthFieldIsCorruptionNotAllocation) {
  const std::string dir = FreshDir("wal_oversize");
  {
    auto log = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("ok")).ok());
  }
  // Overwrite the payload-length field with a huge value.
  const std::string segment = OnlySegment(dir);
  {
    std::fstream file(segment,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(16 + 4);  // segment header + crc field
    const uint32_t huge = 0xFFFFFFFFu;
    file.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  auto fsck = FsckWal(dir);
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->data_loss());
}

TEST(WalTest, AppendFaultFailsCleanlyWithoutLoggingAnything) {
  const std::string dir = FreshDir("wal_fault_append");
  auto log = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("first")).ok());
  {
    ScopedFault fault("wal.append");
    EXPECT_FALSE((*log)->Append(WalRecordType::kSubmit, Bytes("lost")).ok());
  }
  // The failed append consumed no LSN and wrote no bytes: the next one
  // lands at LSN 2 and a reopen sees exactly two clean records.
  auto lsn = (*log)->Append(WalRecordType::kSubmit, Bytes("second"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  log->reset();
  WalRecoveryReport report;
  ASSERT_TRUE(WriteAheadLog::Open({.dir = dir}, &report).ok());
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[1].payload, Bytes("second"));
}

TEST(WalTest, TornWriteFaultPoisonsLogUntilReopen) {
  const std::string dir = FreshDir("wal_fault_torn");
  auto log = WriteAheadLog::Open({.dir = dir});
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Append(WalRecordType::kSubmit, Bytes("durable")).ok());
  {
    ScopedFault fault("wal.append.torn");
    EXPECT_FALSE((*log)->Append(WalRecordType::kSubmit, Bytes("half")).ok());
  }
  // The on-disk tail is now mid-frame; the poisoned object refuses to
  // interleave more bytes after it.
  EXPECT_FALSE((*log)->Append(WalRecordType::kSubmit, Bytes("no")).ok());
  EXPECT_FALSE((*log)->Sync().ok());
  log->reset();

  // Reopen recovers: the tear is truncated, the durable record survives.
  WalRecoveryReport report;
  auto reopened = WriteAheadLog::Open({.dir = dir}, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].payload, Bytes("durable"));
  EXPECT_GT(report.torn_tail_bytes, 0u);
  ASSERT_TRUE(
      (*reopened)->Append(WalRecordType::kSubmit, Bytes("resumed")).ok());
}

TEST(WalTest, TrajectoryPayloadCodecRoundTrips) {
  Trajectory trajectory;
  trajectory.id = -42;
  trajectory.points = {{{45.01, -93.02}, 10.0}, {{45.02, -93.03}, 20.0}};
  auto decoded = DecodeTrajectoryPayload(EncodeTrajectoryPayload(trajectory));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, -42);
  ASSERT_EQ(decoded->points.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded->points[0].pos.lat, 45.01);
  EXPECT_DOUBLE_EQ(decoded->points[1].time, 20.0);

  auto lsn = DecodeLsnPayload(EncodeLsnPayload(77));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 77u);

  // Trailing garbage is corruption, not silently ignored.
  std::vector<uint8_t> padded = EncodeTrajectoryPayload(trajectory);
  padded.push_back(0);
  EXPECT_FALSE(DecodeTrajectoryPayload(padded).ok());
}

TEST(WalTest, StoreWritesThroughAndReplaysFromLog) {
  const std::string dir = FreshDir("wal_store");
  TokenizedTrajectory tokens;
  tokens.push_back({.cell = 7, .time = 1.0, .position = {1.0, 2.0},
                    .heading = 0.5});
  tokens.push_back({.cell = 9, .time = 2.0, .position = {3.0, 4.0},
                    .heading = 1.5});
  {
    auto log = WriteAheadLog::Open({.dir = dir});
    ASSERT_TRUE(log.ok());
    TrajectoryStore store;
    store.AttachWal(log->get());
    size_t index = 0;
    ASSERT_TRUE(store.Append(tokens, &index).ok());
    EXPECT_EQ(index, 0u);
    // A WAL failure blocks the acknowledgement: nothing enters the store.
    ScopedFault fault("wal.append");
    EXPECT_FALSE(store.Append(tokens, &index).ok());
    EXPECT_EQ(store.size(), 1u);
  }
  WalRecoveryReport report;
  auto log = WriteAheadLog::Open({.dir = dir}, &report);
  ASSERT_TRUE(log.ok());
  TrajectoryStore recovered;
  ASSERT_TRUE(recovered.ReplayWal(report.records).ok());
  ASSERT_EQ(recovered.size(), 1u);
  const TokenizedTrajectory& replayed = recovered.Get(0);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].cell, 7u);
  EXPECT_DOUBLE_EQ(replayed[1].position.y, 4.0);
  EXPECT_EQ(recovered.total_tokens(), 2);
}

}  // namespace
}  // namespace kamel
