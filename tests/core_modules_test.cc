// Unit tests for the Tokenization module, the trajectory store, and the
// pyramid geometry.
#include <gtest/gtest.h>

#include "core/pyramid.h"
#include "core/tokenizer.h"
#include "core/trajectory_store.h"
#include "grid/hex_grid.h"

namespace kamel {
namespace {

class TokenizerTest : public testing::Test {
 protected:
  TokenizerTest()
      : projection_({45.0, -93.0}), grid_(75.0),
        tokenizer_(&grid_, &projection_) {}

  Trajectory MakeTrajectory(const std::vector<Vec2>& points,
                            double dt = 5.0) const {
    Trajectory t;
    for (size_t i = 0; i < points.size(); ++i) {
      t.points.push_back(
          {projection_.Unproject(points[i]), static_cast<double>(i) * dt});
    }
    return t;
  }

  LocalProjection projection_;
  HexGrid grid_;
  Tokenizer tokenizer_;
};

TEST_F(TokenizerTest, CollapsesConsecutiveDuplicates) {
  // Three points in the same hex, then one far away.
  const Trajectory t =
      MakeTrajectory({{0, 0}, {5, 5}, {-5, 3}, {400, 0}});
  const TokenizedTrajectory tokens = tokenizer_.Tokenize(t);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].cell, grid_.CellOf({0, 0}));
  EXPECT_EQ(tokens[1].cell, grid_.CellOf({400, 0}));
  // The collapsed token keeps its first observation.
  EXPECT_EQ(tokens[0].time, 0.0);
  EXPECT_NEAR(tokens[0].position.x, 0.0, 1e-6);
}

TEST_F(TokenizerTest, PerPointKeepsEveryReading) {
  const Trajectory t = MakeTrajectory({{0, 0}, {5, 5}, {400, 0}});
  EXPECT_EQ(tokenizer_.TokenizePerPoint(t).size(), 3u);
}

TEST_F(TokenizerTest, HeadingsFollowMovement) {
  const Trajectory t = MakeTrajectory({{0, 0}, {300, 0}, {300, 300}});
  const TokenizedTrajectory tokens = tokenizer_.TokenizePerPoint(t);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_NEAR(tokens[0].heading, 0.0, 0.02);          // east
  EXPECT_NEAR(tokens[1].heading, M_PI / 2, 0.02);     // north
  EXPECT_NEAR(tokens[2].heading, tokens[1].heading, 1e-9);  // inherited
}

TEST_F(TokenizerTest, CellsExtraction) {
  const Trajectory t = MakeTrajectory({{0, 0}, {400, 0}});
  const TokenizedTrajectory tokens = tokenizer_.Tokenize(t);
  const std::vector<CellId> cells = Tokenizer::Cells(tokens);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], tokens[0].cell);
}

TEST_F(TokenizerTest, EmptyTrajectory) {
  EXPECT_TRUE(tokenizer_.Tokenize(Trajectory{}).empty());
}

TEST(TrajectoryStoreTest, AddAndQuery) {
  TrajectoryStore store;
  TokenizedTrajectory a = {{1, 0.0, {0, 0}, 0.0}, {2, 1.0, {100, 0}, 0.0}};
  TokenizedTrajectory b = {{3, 0.0, {1000, 1000}, 0.0},
                           {4, 1.0, {1100, 1000}, 0.0},
                           {5, 2.0, {1200, 1000}, 0.0}};
  store.Add(a);
  store.Add(b);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_tokens(), 5);

  const BBox near_origin = BBox::FromCorners({-10, -10}, {200, 200});
  const std::vector<size_t> enclosed = store.FullyEnclosed(near_origin);
  ASSERT_EQ(enclosed.size(), 1u);
  EXPECT_EQ(enclosed[0], 0u);

  EXPECT_EQ(store.CountTokensIn(near_origin), 2);
  EXPECT_EQ(store.CountTokensIn(BBox::FromCorners({900, 900}, {1150, 1100})),
            2);

  const auto statements = store.Statements({1});
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0], (std::vector<CellId>{3, 4, 5}));
}

TEST(TrajectoryStoreTest, PartialOverlapIsNotEnclosed) {
  TrajectoryStore store;
  store.Add({{1, 0.0, {0, 0}, 0.0}, {2, 1.0, {500, 0}, 0.0}});
  EXPECT_TRUE(
      store.FullyEnclosed(BBox::FromCorners({-10, -10}, {100, 100})).empty());
}

TEST(TrajectoryStoreTest, EmptyTrajectoryAppendsWithEmptyMbr) {
  // Tokenization never emits empty trajectories, but the store must not
  // misbehave if handed one: it occupies an index, matches no query, and
  // its empty MBR stays out of every enclosure result.
  TrajectoryStore store;
  size_t index = 77;
  ASSERT_TRUE(store.Append(TokenizedTrajectory{}, &index).ok());
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.total_tokens(), 0);
  EXPECT_TRUE(store.MbrOf(0).Empty());
  const BBox everything = BBox::FromCorners({-1e9, -1e9}, {1e9, 1e9});
  EXPECT_TRUE(store.FullyEnclosed(everything).empty());
  EXPECT_EQ(store.CountTokensIn(everything), 0);
  EXPECT_TRUE(store.Statements({0})[0].empty());
}

TEST(TrajectoryStoreTest, SinglePointMbrIsDegenerateButQueryable) {
  TrajectoryStore store;
  store.Add({{9, 0.0, {50, 60}, 0.0}});
  const BBox& mbr = store.MbrOf(0);
  EXPECT_FALSE(mbr.Empty());
  EXPECT_EQ(mbr.Width(), 0.0);
  EXPECT_EQ(mbr.Height(), 0.0);
  // A zero-area MBR is still enclosed (and counted) by a box touching it.
  EXPECT_EQ(store.FullyEnclosed(BBox::FromCorners({50, 60}, {70, 80})).size(),
            1u);
  EXPECT_EQ(store.CountTokensIn(BBox::FromCorners({0, 0}, {50, 60})), 1);
  EXPECT_EQ(store.CountTokensIn(BBox::FromCorners({51, 60}, {70, 80})), 0);
}

TEST(TrajectoryStoreTest, CountTokensInIncludesBoundaryPoints) {
  // BBox::Contains is inclusive on all four edges; the token count must
  // agree so pyramid cell statistics do not drop edge-sitting points.
  TrajectoryStore store;
  store.Add({{1, 0.0, {0, 0}, 0.0},      // lower-left corner
             {2, 1.0, {100, 0}, 0.0},    // bottom edge endpoint
             {3, 2.0, {100, 100}, 0.0},  // upper-right corner
             {4, 3.0, {50, 100}, 0.0},   // top edge interior
             {5, 4.0, {100.0001, 50}, 0.0}});  // just outside
  const BBox bounds = BBox::FromCorners({0, 0}, {100, 100});
  EXPECT_EQ(store.CountTokensIn(bounds), 4);
}

TEST(TrajectoryStoreTest, FullyEnclosedHandlesDegenerateBounds) {
  TrajectoryStore store;
  store.Add({{1, 0.0, {10, 10}, 0.0}});                          // point MBR
  store.Add({{2, 0.0, {0, 20}, 0.0}, {3, 1.0, {40, 20}, 0.0}});  // line MBR
  // Zero-area query box exactly on the point trajectory: inclusive.
  const std::vector<size_t> at_point =
      store.FullyEnclosed(BBox::FromCorners({10, 10}, {10, 10}));
  ASSERT_EQ(at_point.size(), 1u);
  EXPECT_EQ(at_point[0], 0u);
  // Zero-height query line covering the horizontal trajectory: inclusive.
  const std::vector<size_t> on_line =
      store.FullyEnclosed(BBox::FromCorners({0, 20}, {40, 20}));
  ASSERT_EQ(on_line.size(), 1u);
  EXPECT_EQ(on_line[0], 1u);
  // An empty (default) query box encloses nothing, not everything.
  EXPECT_TRUE(store.FullyEnclosed(BBox{}).empty());
  EXPECT_EQ(store.CountTokensIn(BBox{}), 0);
}

class PyramidTest : public testing::Test {
 protected:
  PyramidTest()
      : world_(BBox::FromCorners({0, 0}, {1000, 1000})),
        pyramid_(world_, /*height=*/3, /*maintained_levels=*/2) {}

  BBox world_;
  Pyramid pyramid_;
};

TEST_F(PyramidTest, RootCoversWorld) {
  const BBox root = pyramid_.CellBounds({0, 0, 0});
  EXPECT_TRUE(root.Contains(world_));
  EXPECT_EQ(root.Width(), 1000.0);
}

TEST_F(PyramidTest, MaintainedLevels) {
  EXPECT_EQ(pyramid_.lowest_maintained_level(), 2);
  EXPECT_FALSE(pyramid_.IsMaintained(0));
  EXPECT_FALSE(pyramid_.IsMaintained(1));
  EXPECT_TRUE(pyramid_.IsMaintained(2));
  EXPECT_TRUE(pyramid_.IsMaintained(3));
}

TEST_F(PyramidTest, CellAtAndBounds) {
  const PyramidCell cell = pyramid_.CellAt(3, {130.0, 870.0});
  EXPECT_EQ(cell.level, 3);
  EXPECT_EQ(cell.x, 1);  // 130 / 125
  EXPECT_EQ(cell.y, 6);  // 870 / 125
  EXPECT_TRUE(pyramid_.CellBounds(cell).Contains(Vec2{130.0, 870.0}));
}

TEST_F(PyramidTest, CellAtClampsOutOfWorld) {
  const PyramidCell low = pyramid_.CellAt(2, {-50.0, -50.0});
  EXPECT_EQ(low.x, 0);
  EXPECT_EQ(low.y, 0);
  const PyramidCell high = pyramid_.CellAt(2, {5000.0, 5000.0});
  EXPECT_EQ(high.x, 3);
  EXPECT_EQ(high.y, 3);
}

TEST_F(PyramidTest, SmallestEnclosingPicksDeepestCell) {
  // A tiny box deep inside one leaf.
  const PyramidCell leaf =
      pyramid_.SmallestEnclosing(BBox::FromCorners({10, 10}, {20, 20}));
  EXPECT_EQ(leaf.level, 3);
  // A box straddling the vertical midline only fits the root.
  const PyramidCell root =
      pyramid_.SmallestEnclosing(BBox::FromCorners({400, 10}, {600, 20}));
  EXPECT_EQ(root.level, 0);
  // A box crossing a level-2 boundary (y=250) but inside level-1 cell
  // (0,0).
  const PyramidCell mid =
      pyramid_.SmallestEnclosing(BBox::FromCorners({10, 200}, {20, 300}));
  EXPECT_EQ(mid.level, 1);
}

TEST_F(PyramidTest, ParentChildRelations) {
  const PyramidCell cell{3, 5, 6};
  const PyramidCell parent = pyramid_.Parent(cell);
  EXPECT_EQ(parent.level, 2);
  EXPECT_EQ(parent.x, 2);
  EXPECT_EQ(parent.y, 3);
  bool found = false;
  for (const PyramidCell& child : pyramid_.Children(parent)) {
    EXPECT_TRUE(
        pyramid_.CellBounds(parent).Contains(pyramid_.CellBounds(child)));
    if (child == cell) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(PyramidTest, EdgeNeighborsRespectBounds) {
  EXPECT_EQ(pyramid_.EdgeNeighbors({1, 0, 0}).size(), 2u);  // corner
  EXPECT_EQ(pyramid_.EdgeNeighbors({2, 1, 0}).size(), 3u);  // border
  EXPECT_EQ(pyramid_.EdgeNeighbors({2, 1, 1}).size(), 4u);  // interior
  EXPECT_TRUE(pyramid_.EdgeNeighbors({0, 0, 0}).empty());   // root
}

TEST_F(PyramidTest, ModelThresholdScalesByLevel) {
  // k * 4^(H - l) with H=3 (Section 4.1).
  EXPECT_EQ(pyramid_.ModelThreshold(3, 100), 100);
  EXPECT_EQ(pyramid_.ModelThreshold(2, 100), 400);
  EXPECT_EQ(pyramid_.ModelThreshold(1, 100), 1600);
  EXPECT_EQ(pyramid_.ModelThreshold(0, 100), 6400);
}

TEST(PyramidShapeTest, NonSquareWorldIsSquaredUp) {
  const Pyramid pyramid(BBox::FromCorners({0, 0}, {2000, 500}), 2, 1);
  const BBox world = pyramid.world();
  EXPECT_EQ(world.Width(), world.Height());
  EXPECT_EQ(world.Width(), 2000.0);
}

}  // namespace
}  // namespace kamel
