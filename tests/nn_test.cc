#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/blas.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "nn/transformer.h"

namespace kamel::nn {
namespace {

TEST(TensorTest, ShapesAndAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
  t.At(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  t.Reshape({3, 2});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.ShapeString(), "f32[3, 2]");
}

TEST(TensorTest, FactoryFunctions) {
  Rng rng(1);
  const Tensor z = Tensor::Zeros({4});
  EXPECT_EQ(z.Sum(), 0.0);
  const Tensor f = Tensor::Full({4}, 2.5f);
  EXPECT_EQ(f.Sum(), 10.0);
  const Tensor r = Tensor::Randn({1000}, &rng, 0.1);
  EXPECT_NEAR(r.Sum() / 1000.0, 0.0, 0.02);
  EXPECT_LT(r.AbsMax(), 0.6f);
}

// Reference triple-loop matmul for validating Sgemm.
void NaiveGemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
               float alpha, const Tensor& a, const Tensor& b, float beta,
               Tensor* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ta ? a.At(p, i) : a.At(i, p);
        const float bv = tb ? b.At(j, p) : b.At(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c->At(i, j) = static_cast<float>(alpha * acc + beta * c->At(i, j));
    }
  }
}

struct GemmCase {
  bool ta;
  bool tb;
  float beta;
};

class SgemmTest : public testing::TestWithParam<GemmCase> {};

TEST_P(SgemmTest, MatchesNaiveReference) {
  const GemmCase param = GetParam();
  Rng rng(33);
  const int64_t m = 7, n = 5, k = 9;
  Tensor a = param.ta ? Tensor::Randn({k, m}, &rng, 1.0)
                      : Tensor::Randn({m, k}, &rng, 1.0);
  Tensor b = param.tb ? Tensor::Randn({n, k}, &rng, 1.0)
                      : Tensor::Randn({k, n}, &rng, 1.0);
  Tensor c = Tensor::Randn({m, n}, &rng, 1.0);
  Tensor expected = c;
  NaiveGemm(param.ta, param.tb, m, n, k, 0.75f, a, b, param.beta,
            &expected);
  Sgemm(param.ta, param.tb, m, n, k, 0.75f, a.data(), a.dim(1), b.data(),
        b.dim(1), param.beta, c.data(), n);
  for (int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombos, SgemmTest,
    testing::Values(GemmCase{false, false, 0.0f},
                    GemmCase{false, false, 1.0f},
                    GemmCase{true, false, 0.0f},
                    GemmCase{false, true, 0.0f},
                    GemmCase{true, true, 0.5f}));

TEST(OpsTest, GeluValues) {
  float y[3];
  const float x[3] = {-10.0f, 0.0f, 10.0f};
  GeluForward(x, y, 3);
  EXPECT_NEAR(y[0], 0.0f, 1e-4);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_NEAR(y[2], 10.0f, 1e-4);
}

TEST(OpsTest, GeluGradientMatchesFiniteDifference) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const float x = static_cast<float>(rng.NextDouble(-3.0, 3.0));
    const float eps = 1e-3f;
    float lo, hi;
    float xin = x - eps;
    GeluForward(&xin, &lo, 1);
    xin = x + eps;
    GeluForward(&xin, &hi, 1);
    const float numeric = (hi - lo) / (2 * eps);
    float analytic;
    const float dy = 1.0f;
    GeluBackward(&x, &dy, &analytic, 1);
    EXPECT_NEAR(analytic, numeric, 5e-3) << "x=" << x;
  }
}

TEST(OpsTest, SoftmaxRowSumsToOneAndIsShiftInvariant) {
  const float x[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  float y[4];
  SoftmaxRow(x, y, 4);
  double sum = 0.0;
  for (float v : y) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(y[3], y[2]);

  float shifted[4];
  const float xs[4] = {101.0f, 102.0f, 103.0f, 104.0f};
  SoftmaxRow(xs, shifted, 4);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(shifted[i], y[i], 1e-6);
}

TEST(OpsTest, SoftmaxHandlesExtremeLogits) {
  const float x[3] = {-1e9f, 0.0f, 1.0f};
  float y[3];
  SoftmaxRow(x, y, 3);
  EXPECT_NEAR(y[0], 0.0f, 1e-12);
  EXPECT_NEAR(y[1] + y[2], 1.0f, 1e-6);
}

TEST(OpsTest, SoftmaxBackwardMatchesFiniteDifference) {
  Rng rng(6);
  const int n = 5;
  float x[n], p[n], dy[n], dx[n];
  for (int i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.NextDouble(-2, 2));
    dy[i] = static_cast<float>(rng.NextDouble(-1, 1));
  }
  SoftmaxRow(x, p, n);
  SoftmaxBackwardRow(p, dy, dx, n);
  for (int i = 0; i < n; ++i) {
    const float eps = 1e-3f;
    float xp[n], pp[n], pm[n];
    std::copy(x, x + n, xp);
    xp[i] += eps;
    SoftmaxRow(xp, pp, n);
    xp[i] -= 2 * eps;
    SoftmaxRow(xp, pm, n);
    double numeric = 0.0;
    for (int j = 0; j < n; ++j) {
      numeric += static_cast<double>(dy[j]) * (pp[j] - pm[j]) / (2 * eps);
    }
    EXPECT_NEAR(dx[i], numeric, 2e-3);
  }
}

// Checks analytic parameter gradients of `loss_fn` (a deterministic scalar
// function that runs forward+backward and leaves grads accumulated)
// against central finite differences on a sample of entries.
template <typename LossFn>
void CheckParamGradients(const std::vector<Param*>& params, LossFn loss_fn,
                         double tolerance) {
  for (Param* p : params) p->grad.SetZero();
  const double base = loss_fn();
  (void)base;
  Rng rng(99);
  for (Param* p : params) {
    const int64_t samples = std::min<int64_t>(4, p->value.size());
    for (int64_t s = 0; s < samples; ++s) {
      const int64_t i = static_cast<int64_t>(
          rng.NextUint64(static_cast<uint64_t>(p->value.size())));
      const float analytic = p->grad[i];
      const float eps = 3e-3f;
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      // Fresh grads so the probe run does not pollute anything.
      std::vector<Tensor> grad_backup;
      for (Param* q : params) grad_backup.push_back(q->grad);
      const double hi = loss_fn();
      p->value[i] = saved - eps;
      const double lo = loss_fn();
      p->value[i] = saved;
      for (size_t q = 0; q < params.size(); ++q) {
        params[q]->grad = grad_backup[q];
      }
      const double numeric = (hi - lo) / (2.0 * eps);
      EXPECT_NEAR(analytic, numeric,
                  tolerance * std::max(1.0, std::fabs(numeric)))
          << p->name << "[" << i << "]";
    }
  }
}

TEST(LinearTest, ForwardComputesAffineMap) {
  Rng rng(7);
  Linear layer("test", 3, 2, &rng);
  std::vector<Param*> params;
  layer.CollectParams(&params);
  ASSERT_EQ(params.size(), 2u);
  // Set known weights: y = x W + b.
  Param* w = params[0];
  Param* b = params[1];
  for (int64_t i = 0; i < w->value.size(); ++i) {
    w->value[i] = static_cast<float>(i);
  }
  b->value[0] = 1.0f;
  b->value[1] = -1.0f;
  Tensor x({1, 3});
  x[0] = 1.0f;
  x[1] = 2.0f;
  x[2] = 3.0f;
  const Tensor y = layer.Forward(x);
  // W = [[0,1],[2,3],[4,5]]; y = [0+4+12, 1+6+15] + [1,-1] = [17, 21].
  EXPECT_NEAR(y[0], 17.0f, 1e-5);
  EXPECT_NEAR(y[1], 21.0f, 1e-5);
}

TEST(LinearTest, GradCheck) {
  Rng rng(8);
  Linear layer("lin", 4, 3, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng, 1.0);
  Tensor coef = Tensor::Randn({2, 3}, &rng, 1.0);
  std::vector<Param*> params;
  layer.CollectParams(&params);

  Tensor dx_analytic;
  auto loss = [&]() {
    const Tensor y = layer.Forward(x);
    double total = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(coef[i]) * y[i];
    }
    dx_analytic = layer.Backward(coef);
    return total;
  };
  CheckParamGradients(params, loss, 2e-2);

  // Input gradient check.
  for (int64_t i = 0; i < x.size(); ++i) {
    const float eps = 3e-3f;
    const float saved = x[i];
    x[i] = saved + eps;
    const Tensor yh = layer.Forward(x);
    x[i] = saved - eps;
    const Tensor yl = layer.Forward(x);
    x[i] = saved;
    double numeric = 0.0;
    for (int64_t j = 0; j < yh.size(); ++j) {
      numeric += static_cast<double>(coef[j]) * (yh[j] - yl[j]) / (2 * eps);
    }
    EXPECT_NEAR(dx_analytic[i], numeric, 2e-2);
  }
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(9);
  LayerNorm layer("ln", 8);
  Tensor x = Tensor::Randn({3, 8}, &rng, 2.0);
  const Tensor y = layer.Forward(x);
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t c = 0; c < 8; ++c) mean += y.At(r, c);
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      var += (y.At(r, c) - mean) * (y.At(r, c) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(10);
  LayerNorm layer("ln", 6);
  std::vector<Param*> params;
  layer.CollectParams(&params);
  // Non-trivial gamma/beta so their gradients are exercised.
  for (Param* p : params) {
    for (int64_t i = 0; i < p->value.size(); ++i) {
      p->value[i] += static_cast<float>(rng.NextDouble(-0.2, 0.2));
    }
  }
  Tensor x = Tensor::Randn({2, 6}, &rng, 1.0);
  Tensor coef = Tensor::Randn({2, 6}, &rng, 1.0);

  Tensor dx_analytic;
  auto loss = [&]() {
    const Tensor y = layer.Forward(x);
    double total = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(coef[i]) * y[i];
    }
    dx_analytic = layer.Backward(coef);
    return total;
  };
  CheckParamGradients(params, loss, 2e-2);

  for (int64_t i = 0; i < x.size(); ++i) {
    const float eps = 3e-3f;
    const float saved = x[i];
    x[i] = saved + eps;
    const Tensor yh = layer.Forward(x);
    x[i] = saved - eps;
    const Tensor yl = layer.Forward(x);
    x[i] = saved;
    double numeric = 0.0;
    for (int64_t j = 0; j < yh.size(); ++j) {
      numeric += static_cast<double>(coef[j]) * (yh[j] - yl[j]) / (2 * eps);
    }
    EXPECT_NEAR(dx_analytic[i], numeric,
                2e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(11);
  Dropout dropout(0.5);
  Tensor x = Tensor::Randn({4, 4}, &rng, 1.0);
  const Tensor y = dropout.Forward(x, /*train=*/false, &rng);
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(DropoutTest, TrainModeZeroesAndScales) {
  Rng rng(12);
  Dropout dropout(0.4);
  Tensor x = Tensor::Full({10000}, 1.0f);
  const Tensor y = dropout.Forward(x, /*train=*/true, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.6f, 1e-5);
    }
  }
  EXPECT_NEAR(zeros / 10000.0, 0.4, 0.03);
  // Expected value preserved (inverted dropout).
  EXPECT_NEAR(y.Sum() / y.size(), 1.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(13);
  Dropout dropout(0.5);
  Tensor x = Tensor::Full({100}, 1.0f);
  const Tensor y = dropout.Forward(x, /*train=*/true, &rng);
  Tensor g = Tensor::Full({100}, 1.0f);
  const Tensor dx = dropout.Backward(g);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dx[i] == 0.0f, y[i] == 0.0f);
  }
}

TEST(EmbeddingTest, GathersRowsAndScattersGrads) {
  Rng rng(14);
  Embedding embedding("emb", 5, 3, &rng);
  const Tensor y = embedding.Forward({1, 3, 1});
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 3}));
  // Rows 0 and 2 are the same table row.
  for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(y.At(0, c), y.At(2, c));

  Tensor g = Tensor::Full({3, 3}, 1.0f);
  embedding.Backward(g);
  std::vector<Param*> params;
  embedding.CollectParams(&params);
  const Tensor& table_grad = params[0]->grad;
  // Token 1 used twice -> grad 2; token 3 once -> grad 1; others 0.
  EXPECT_EQ(table_grad.At(1, 0), 2.0f);
  EXPECT_EQ(table_grad.At(3, 0), 1.0f);
  EXPECT_EQ(table_grad.At(0, 0), 0.0f);
}

TEST(AttentionTest, GradCheck) {
  Rng rng(15);
  const int64_t batch = 2, seq = 3, dim = 4;
  MultiHeadAttention attention("attn", dim, 2, &rng);
  Tensor x = Tensor::Randn({batch * seq, dim}, &rng, 0.5);
  Tensor coef = Tensor::Randn({batch * seq, dim}, &rng, 1.0);
  std::vector<float> mask(static_cast<size_t>(batch * seq), 1.0f);
  mask[5] = 0.0f;  // one padded position
  std::vector<Param*> params;
  attention.CollectParams(&params);

  Tensor dx_analytic;
  auto loss = [&]() {
    const Tensor y = attention.Forward(x, mask, batch, seq);
    double total = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(coef[i]) * y[i];
    }
    dx_analytic = attention.Backward(coef);
    return total;
  };
  CheckParamGradients(params, loss, 4e-2);

  for (int64_t i = 0; i < x.size(); ++i) {
    const float eps = 3e-3f;
    const float saved = x[i];
    x[i] = saved + eps;
    const Tensor yh = attention.Forward(x, mask, batch, seq);
    x[i] = saved - eps;
    const Tensor yl = attention.Forward(x, mask, batch, seq);
    x[i] = saved;
    double numeric = 0.0;
    for (int64_t j = 0; j < yh.size(); ++j) {
      numeric += static_cast<double>(coef[j]) * (yh[j] - yl[j]) / (2 * eps);
    }
    EXPECT_NEAR(dx_analytic[i], numeric,
                4e-2 * std::max(1.0, std::fabs(numeric)))
        << "x[" << i << "]";
  }
}

TEST(AttentionTest, PaddedKeysGetNoAttention) {
  Rng rng(16);
  const int64_t batch = 1, seq = 4, dim = 4;
  MultiHeadAttention attention("attn", dim, 2, &rng);
  Tensor x = Tensor::Randn({seq, dim}, &rng, 0.5);
  std::vector<float> mask = {1.0f, 1.0f, 1.0f, 0.0f};
  const Tensor with_pad = attention.Forward(x, mask, batch, seq);
  // Change the padded position's content: unpadded outputs must not move.
  Tensor x2 = x;
  for (int64_t c = 0; c < dim; ++c) x2.At(3, c) += 10.0f;
  const Tensor with_pad2 = attention.Forward(x2, mask, batch, seq);
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t c = 0; c < dim; ++c) {
      EXPECT_NEAR(with_pad.At(t, c), with_pad2.At(t, c), 1e-4);
    }
  }
}

BertConfig TinyConfig(int64_t vocab = 11) {
  BertConfig config;
  config.vocab_size = vocab;
  config.d_model = 8;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 16;
  config.max_seq_len = 8;
  config.dropout = 0.0;  // determinism for grad checks
  return config;
}

TEST(BertModelTest, ForwardShapeAndParamCount) {
  BertModel model(TinyConfig(), 3);
  const std::vector<int32_t> ids = {2, 5, 4, 6, 3, 0};
  const std::vector<float> mask = {1, 1, 1, 1, 1, 0};
  const Tensor logits = model.Forward(ids, mask, 1, 6, false);
  EXPECT_EQ(logits.shape(), (std::vector<int64_t>{6, 11}));

  int64_t total = 0;
  for (Param* p : model.Params()) total += p->value.size();
  EXPECT_EQ(total, model.config().NumParameters());
}

TEST(BertModelTest, EndToEndGradCheck) {
  BertModel model(TinyConfig(), 4);
  const std::vector<int32_t> ids = {2, 5, 4, 6, 3};
  const std::vector<float> mask(5, 1.0f);
  const std::vector<int32_t> labels = {-1, -1, 7, -1, -1};

  auto loss = [&]() {
    const Tensor logits = model.Forward(ids, mask, 1, 5, true);
    return model.LossAndBackward(logits, labels);
  };
  // LossAndBackward accumulates; zero first then run once for analytics.
  model.ZeroGrads();
  loss();
  // Sample-check a few parameters of each tensor against finite diffs.
  std::vector<Param*> params = model.Params();
  Rng rng(55);
  for (Param* p : params) {
    const int64_t i = static_cast<int64_t>(
        rng.NextUint64(static_cast<uint64_t>(p->value.size())));
    const float analytic = p->grad[i];
    const float eps = 5e-3f;
    const float saved = p->value[i];
    Tensor grads_saved = p->grad;
    p->value[i] = saved + eps;
    model.ZeroGrads();
    const double hi = loss();
    p->value[i] = saved - eps;
    model.ZeroGrads();
    const double lo = loss();
    p->value[i] = saved;
    p->grad = grads_saved;
    const double numeric = (hi - lo) / (2.0 * eps);
    EXPECT_NEAR(analytic, numeric,
                5e-2 * std::max(0.5, std::fabs(numeric)))
        << p->name;
  }
}

TEST(BertModelTest, LossIgnoresUnmaskedPositions) {
  BertModel model(TinyConfig(), 5);
  const std::vector<int32_t> ids = {2, 5, 4, 3};
  const std::vector<float> mask(4, 1.0f);
  const Tensor logits = model.Forward(ids, mask, 1, 4, false);
  const std::vector<int32_t> no_labels(4, -1);
  EXPECT_EQ(model.LossAndBackward(logits, no_labels), 0.0);
}

TEST(BertModelTest, PositionProbabilitiesAreDistribution) {
  BertModel model(TinyConfig(), 6);
  const std::vector<int32_t> ids = {2, 4, 7, 3};
  const std::vector<float> mask(4, 1.0f);
  const Tensor logits = model.Forward(ids, mask, 1, 4, false);
  const std::vector<float> probs = model.PositionProbabilities(logits, 2);
  double sum = 0.0;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(BertModelTest, SaveLoadReproducesLogits) {
  BertModel model(TinyConfig(), 7);
  const std::vector<int32_t> ids = {2, 5, 4, 8, 3};
  const std::vector<float> mask(5, 1.0f);
  const Tensor before = model.Forward(ids, mask, 1, 5, false);

  BinaryWriter writer;
  model.Save(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded = BertModel::Load(&reader);
  ASSERT_TRUE(loaded.ok());
  const Tensor after = (*loaded)->Forward(ids, mask, 1, 5, false);
  ASSERT_EQ(before.size(), after.size());
  for (int64_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

TEST(BertModelTest, LoadRejectsCorruptMagic) {
  BinaryWriter writer;
  writer.WriteString("not-a-model");
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(BertModel::Load(&reader).ok());
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Param p("x", Tensor::Full({2}, 10.0f));
  AdamOptions options;
  options.clip_norm = 0.0;
  AdamOptimizer optimizer({&p}, options);
  for (int step = 0; step < 800; ++step) {
    p.grad.SetZero();
    // f = (x0-3)^2 + (x1+2)^2
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    p.grad[1] = 2.0f * (p.value[1] + 2.0f);
    optimizer.Step(0.05);
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
  EXPECT_NEAR(p.value[1], -2.0f, 0.05f);
}

TEST(AdamTest, ClippingBoundsGlobalNorm) {
  Param p("x", Tensor::Full({4}, 0.0f));
  AdamOptions options;
  options.clip_norm = 1.0;
  AdamOptimizer optimizer({&p}, options);
  for (int64_t i = 0; i < 4; ++i) p.grad[i] = 100.0f;
  optimizer.Step(1.0);
  // After clipping, each grad component was 0.5 (norm 1), so Adam's first
  // step is ~lr in magnitude, not 100.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::fabs(p.value[i]), 1.5f);
  }
}

TEST(WarmupScheduleTest, ShapeIsTriangular) {
  const double peak = 1e-3;
  EXPECT_LT(WarmupLinearDecay(peak, 0, 100, 1000), peak * 0.02);
  EXPECT_NEAR(WarmupLinearDecay(peak, 99, 100, 1000), peak, 1e-9);
  EXPECT_NEAR(WarmupLinearDecay(peak, 550, 100, 1000), peak * 0.5, 1e-6);
  EXPECT_NEAR(WarmupLinearDecay(peak, 999, 100, 1000), peak / 900.0, 1e-7);
  // No warmup: starts at peak.
  EXPECT_NEAR(WarmupLinearDecay(peak, 0, 0, 10), peak, 1e-9);
}

}  // namespace
}  // namespace kamel::nn
