// Block-quantized serving weights: codec round trips at the edge cases
// (all-zero blocks, max-magnitude values, tail blocks, poisoned weights),
// snapshot compatibility (fp32 saves stay byte-identical to the
// pre-quantization format), and the quantized model/repository serving
// path end to end, including the demand-load cache.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/rng.h"
#include "core/model_repository.h"
#include "grid/hex_grid.h"
#include "nn/backend/quant.h"
#include "nn/tensor.h"
#include "nn/transformer.h"

namespace kamel::nn {
namespace {

double Nmse(const float* ref, const float* got, int64_t n) {
  double err = 0.0, norm = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(ref[i]) - got[i];
    err += d * d;
    norm += static_cast<double>(ref[i]) * ref[i];
  }
  return err / (norm + 1e-30);
}

TEST(QuantCodecTest, RowBytesMath) {
  // q8_0: 36 bytes per 32-weight block; q4_0: 20.
  EXPECT_EQ(QuantRowBytes(WeightFormat::kQ8_0, 32), 36);
  EXPECT_EQ(QuantRowBytes(WeightFormat::kQ8_0, 33), 72);
  EXPECT_EQ(QuantRowBytes(WeightFormat::kQ8_0, 64), 72);
  EXPECT_EQ(QuantRowBytes(WeightFormat::kQ4_0, 32), 20);
  EXPECT_EQ(QuantRowBytes(WeightFormat::kQ4_0, 37), 40);
}

TEST(QuantCodecTest, ParseAndToString) {
  EXPECT_EQ(*ParseWeightFormat("none"), WeightFormat::kF32);
  EXPECT_EQ(*ParseWeightFormat("f32"), WeightFormat::kF32);
  EXPECT_EQ(*ParseWeightFormat("q8_0"), WeightFormat::kQ8_0);
  EXPECT_EQ(*ParseWeightFormat("q4_0"), WeightFormat::kQ4_0);
  EXPECT_FALSE(ParseWeightFormat("q5_1").ok());
  EXPECT_STREQ(ToString(WeightFormat::kQ8_0), "q8_0");
}

TEST(QuantCodecTest, AllZeroRowsDecodeToExactZero) {
  const std::vector<float> zeros(3 * 40, 0.0f);
  for (const WeightFormat format : {WeightFormat::kQ8_0, WeightFormat::kQ4_0}) {
    auto q = QuantMatrix::Quantize(format, zeros.data(), 3, 40);
    ASSERT_TRUE(q.ok());
    std::vector<float> out(3 * 40, 1.0f);
    q->Dequantize(out.data());
    for (const float v : out) EXPECT_EQ(v, 0.0f);
  }
}

TEST(QuantCodecTest, MaxMagnitudeRoundTrip) {
  // The absmax element of each block maps to the top quant level and must
  // decode to (nearly) itself; everything else stays within half a step.
  Rng rng(7);
  std::vector<float> src(64);
  for (float& v : src) v = static_cast<float>(rng.NextGaussian());
  src[5] = 100.0f;    // block 0 absmax
  src[40] = -100.0f;  // block 1 absmax

  auto q8 = QuantMatrix::Quantize(WeightFormat::kQ8_0, src.data(), 1, 64);
  ASSERT_TRUE(q8.ok());
  std::vector<float> out(64);
  q8->DequantizeRow(0, out.data());
  EXPECT_NEAR(out[5], 100.0f, 100.0f / 127.0f);
  EXPECT_NEAR(out[40], -100.0f, 100.0f / 127.0f);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(out[i], src[i], 0.5f * 100.0f / 127.0f + 1e-4f) << i;
  }

  auto q4 = QuantMatrix::Quantize(WeightFormat::kQ4_0, src.data(), 1, 64);
  ASSERT_TRUE(q4.ok());
  q4->DequantizeRow(0, out.data());
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(out[i], src[i], 0.5f * 100.0f / 7.0f + 1e-4f) << i;
  }
}

TEST(QuantCodecTest, GaussianNmseWithinFormatBudget) {
  Rng rng(8);
  const int64_t rows = 6, cols = 96;
  Tensor w = Tensor::Randn({rows, cols}, &rng);
  std::vector<float> out(static_cast<size_t>(rows * cols));

  auto q8 = QuantMatrix::Quantize(WeightFormat::kQ8_0, w.data(), rows, cols);
  ASSERT_TRUE(q8.ok());
  q8->Dequantize(out.data());
  EXPECT_LE(Nmse(w.data(), out.data(), rows * cols), 1e-4);

  auto q4 = QuantMatrix::Quantize(WeightFormat::kQ4_0, w.data(), rows, cols);
  ASSERT_TRUE(q4.ok());
  q4->Dequantize(out.data());
  EXPECT_LE(Nmse(w.data(), out.data(), rows * cols), 2e-2);
}

TEST(QuantCodecTest, TailBlockDecodesExactWidth) {
  // cols = 37: one full block + a 5-wide tail. DequantizeRow must write
  // exactly 37 floats — the canary beyond stays untouched.
  Rng rng(9);
  Tensor w = Tensor::Randn({2, 37}, &rng);
  for (const WeightFormat format : {WeightFormat::kQ8_0, WeightFormat::kQ4_0}) {
    auto q = QuantMatrix::Quantize(format, w.data(), 2, 37);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->row_bytes(), 2 * QuantBlockBytes(format));
    std::vector<float> out(64, -777.0f);
    q->DequantizeRow(1, out.data());
    for (int i = 37; i < 64; ++i) EXPECT_EQ(out[i], -777.0f) << i;
    EXPECT_LE(Nmse(w.data() + 37, out.data(), 37),
              format == WeightFormat::kQ8_0 ? 1e-4 : 2e-2);
  }
}

TEST(QuantCodecTest, RejectsNonFiniteWeights) {
  std::vector<float> src(32, 1.0f);
  src[13] = std::nanf("");
  EXPECT_FALSE(
      QuantMatrix::Quantize(WeightFormat::kQ8_0, src.data(), 1, 32).ok());
  src[13] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(
      QuantMatrix::Quantize(WeightFormat::kQ4_0, src.data(), 1, 32).ok());
}

TEST(QuantCodecTest, SaveLoadRoundTripAndCorruptTag) {
  Rng rng(10);
  Tensor w = Tensor::Randn({5, 33}, &rng);
  auto q = QuantMatrix::Quantize(WeightFormat::kQ4_0, w.data(), 5, 33);
  ASSERT_TRUE(q.ok());

  BinaryWriter writer;
  q->Save(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded = QuantMatrix::Load(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows(), 5);
  ASSERT_EQ(loaded->cols(), 33);
  ASSERT_EQ(loaded->byte_size(), q->byte_size());
  EXPECT_EQ(0, std::memcmp(loaded->row_data(0), q->row_data(0),
                           static_cast<size_t>(q->byte_size())));

  // Corrupt the format tag: Load must fail cleanly, not crash.
  std::vector<uint8_t> bytes = writer.buffer();
  bytes[0] = 0x7f;
  BinaryReader corrupt(std::move(bytes));
  EXPECT_FALSE(QuantMatrix::Load(&corrupt).ok());
}

// ---- model-level compatibility ----------------------------------------

BertConfig TinyConfig() {
  BertConfig config;
  config.vocab_size = 200;
  config.d_model = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.max_seq_len = 16;
  config.dropout = 0.0;
  return config;
}

TEST(QuantSnapshotTest, Fp32SaveBytesUnchangedByTheQuantPath) {
  // The void Save (historical) and Save(kF32) must produce identical
  // bytes — a pure-fp32 snapshot is indistinguishable from one written
  // before quantization existed, so old snapshots keep loading and new
  // fp32 snapshots keep opening in old builds.
  BertModel model(TinyConfig(), /*seed=*/21);
  BinaryWriter legacy, explicit_f32;
  model.Save(&legacy);
  ASSERT_TRUE(model.Save(&explicit_f32, WeightFormat::kF32).ok());
  ASSERT_EQ(legacy.buffer().size(), explicit_f32.buffer().size());
  EXPECT_EQ(0, std::memcmp(legacy.buffer().data(),
                           explicit_f32.buffer().data(),
                           legacy.buffer().size()));
  // And it carries the v1 model magic (length-prefixed), not the
  // quant-aware v2.
  const std::string head(legacy.buffer().begin() + 4,
                         legacy.buffer().begin() + 4 + 13);
  EXPECT_EQ(head, "kamel-bert-v1");

  BinaryReader reader(legacy.buffer());
  auto loaded = BertModel::Load(&reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->weight_format(), WeightFormat::kF32);
}

TEST(QuantSnapshotTest, QuantizedModelRoundTripServesWithinBudget) {
  BertModel model(TinyConfig(), /*seed=*/22);
  const int64_t seq = 12;
  std::vector<int32_t> ids(static_cast<size_t>(seq), 7);
  ids[4] = 4;
  const std::vector<float> mask(static_cast<size_t>(seq), 1.0f);
  const Tensor want = model.ForwardInference(ids, mask, 1, seq);

  const struct {
    WeightFormat format;
    double tol;
    double max_bytes_ratio;
  } kCases[] = {
      // End-to-end logits budgets: looser than per-op (error compounds
      // across layers) but tight enough to catch a broken codec.
      {WeightFormat::kQ8_0, 2e-3, 0.45},
      {WeightFormat::kQ4_0, 5e-2, 0.35},
  };
  for (const auto& c : kCases) {
    BinaryWriter writer;
    ASSERT_TRUE(model.Save(&writer, c.format).ok());
    const std::string head(writer.buffer().begin() + 4,
                           writer.buffer().begin() + 4 + 13);
    EXPECT_EQ(head, "kamel-bert-v2");

    BinaryReader reader(writer.buffer());
    auto loaded = BertModel::Load(&reader);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ((*loaded)->weight_format(), c.format);
    // WeightBytes includes the rank-1 params kept fp32, so the whole-model
    // ratio sits above the raw block ratio (28.1% / 15.6%).
    EXPECT_LT(static_cast<double>((*loaded)->WeightBytes()),
              c.max_bytes_ratio * static_cast<double>(model.WeightBytes()))
        << ToString(c.format);

    const Tensor got = (*loaded)->ForwardInference(ids, mask, 1, seq);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_LE(Nmse(want.data(), got.data(), want.size()), c.tol)
        << ToString(c.format);

    // Re-saving a loaded quantized model (even "as fp32") keeps the
    // quantized params as-is: serving-only weights never invent precision.
    BinaryWriter resave;
    ASSERT_TRUE((*loaded)->Save(&resave, WeightFormat::kF32).ok());
    const std::string resave_head(resave.buffer().begin() + 4,
                                  resave.buffer().begin() + 4 + 13);
    EXPECT_EQ(resave_head, "kamel-bert-v2");
    BinaryReader reread(resave.buffer());
    auto reloaded = BertModel::Load(&reread);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ((*reloaded)->weight_format(), c.format);
  }
}

// ---- repository-level serving -----------------------------------------

class QuantRepositoryTest : public testing::Test {
 protected:
  QuantRepositoryTest()
      : grid_(75.0), world_(BBox::FromCorners({0, 0}, {2000, 2000})) {}

  static KamelOptions TinyOptions() {
    KamelOptions options;
    options.pyramid_height = 1;
    options.pyramid_levels = 2;
    options.model_token_threshold = 40;
    options.bert.encoder.d_model = 8;
    options.bert.encoder.num_heads = 2;
    options.bert.encoder.num_layers = 1;
    options.bert.encoder.ffn_dim = 16;
    options.bert.encoder.max_seq_len = 16;
    options.bert.encoder.dropout = 0.0;
    options.bert.train.steps = 30;
    options.bert.train.batch_size = 4;
    options.seed = 5;
    return options;
  }

  void AddTrajectory(double x0, double y, int tokens) {
    TokenizedTrajectory trajectory;
    for (int i = 0; i < tokens; ++i) {
      const Vec2 p{x0 + i * 130.0, y};
      trajectory.push_back(
          {grid_.CellOf(p), static_cast<double>(i) * 10.0, p, 0.0});
    }
    indices_.push_back(store_->Add(std::move(trajectory)));
  }

  HexGrid grid_;
  BBox world_;
  std::shared_ptr<TrajectoryStore> store_ =
      std::make_shared<TrajectoryStore>();
  std::vector<size_t> indices_;
};

TEST_F(QuantRepositoryTest, QuantizedSaveLoadServesAndAccountsBytes) {
  const KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  for (int t = 0; t < 10; ++t) AddTrajectory(100.0, 200.0 + t * 60.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  ASSERT_GE(repo.num_models(), 1);

  const ModelRepository::WeightResidency before = repo.GetWeightResidency();
  EXPECT_EQ(before.models_quant, 0);
  EXPECT_GT(before.f32_bytes, 0);

  BinaryWriter writer;
  ASSERT_TRUE(repo.Save(&writer, WeightFormat::kQ8_0).ok());
  ModelRepository loaded(pyramid, options, store_);
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Load(&reader).ok());
  EXPECT_EQ(loaded.num_models(), repo.num_models());

  const ModelRepository::WeightResidency after = loaded.GetWeightResidency();
  EXPECT_EQ(after.models_f32, 0);
  EXPECT_EQ(after.models_quant, loaded.num_models());
  EXPECT_GT(after.quant_bytes, 0);
  // At this test's tiny d_model=8 the 32-wide block padding dominates, so
  // the shrink is modest; the real ~28% ratio is asserted at model level
  // (QuantizedModelRoundTripServesWithinBudget) where dims fill blocks.
  EXPECT_LT(after.quant_bytes, before.f32_bytes);

  // A quantized model serves predictions.
  const ModelHandle model =
      loaded.SelectModel(BBox::FromCorners({100, 150}, {500, 600}));
  ASSERT_NE(model, nullptr);
  const CellId s = grid_.CellOf({120, 200});
  const CellId d = grid_.CellOf({380, 200});
  const auto predictions = model->PredictMasked({s}, {d}, 3);
  EXPECT_FALSE(predictions.empty());
}

TEST_F(QuantRepositoryTest, QuantizedDemandLoadMatchesEagerLoad) {
  KamelOptions options = TinyOptions();
  Pyramid pyramid(world_, options.pyramid_height, options.pyramid_levels);
  ModelRepository repo(pyramid, options, store_);
  for (int t = 0; t < 20; ++t) AddTrajectory(120.0, 150.0 + t * 40.0, 5);
  for (int t = 0; t < 12; ++t) AddTrajectory(120.0, 1150.0 + t * 40.0, 5);
  ASSERT_TRUE(repo.AddTrainingBatch(indices_).ok());
  ASSERT_GE(repo.num_models(), 3);

  BinaryWriter writer;
  ASSERT_TRUE(repo.Save(&writer, WeightFormat::kQ4_0).ok());
  const std::string path = testing::TempDir() + "/quant_repo_lazy.bin";
  ASSERT_TRUE(writer.FlushToFileAtomic(path).ok());

  // Eagerly loaded quantized repo = the reference.
  ModelRepository eager(pyramid, options, store_);
  BinaryReader eager_reader(writer.buffer());
  ASSERT_TRUE(eager.Load(&eager_reader).ok());

  // Demand-loading quantized repo: decoded sections must serve the same
  // bytes, so predictions agree exactly.
  options.max_resident_models = 1;
  ModelRepository lazy(pyramid, options, /*store=*/nullptr);
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(lazy.Load(&*reader, nullptr, &path).ok());
  EXPECT_EQ(lazy.num_models(), eager.num_models());

  const BBox sw_query = BBox::FromCorners({100, 150}, {500, 600});
  const BBox root_query = BBox::FromCorners({100, 100}, {1900, 1900});
  const CellId s = grid_.CellOf({120, 150});
  const CellId dst = grid_.CellOf({380, 150});
  for (int round = 0; round < 3; ++round) {
    for (const BBox& query : {sw_query, root_query}) {
      const ModelHandle want = eager.SelectModel(query);
      const ModelHandle got = lazy.SelectModel(query);
      ASSERT_NE(want, nullptr);
      ASSERT_NE(got, nullptr);
      const auto a = want->PredictMasked({s}, {dst}, 3);
      const auto b = got->PredictMasked({s}, {dst}, 3);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cell, b[i].cell);
        EXPECT_DOUBLE_EQ(a[i].prob, b[i].prob);
      }
    }
  }
}

}  // namespace
}  // namespace kamel::nn
